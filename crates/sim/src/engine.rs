//! The discrete-event simulation loop.
//!
//! A [`World`] is the complete mutable state of an experiment (APs,
//! controller, clients, channel, medium, flows). The engine pops the
//! earliest event from the future event list, advances the clock, and hands
//! the event to the world together with a [`Ctx`] through which the world
//! schedules follow-up events and cancels timers.
//!
//! The loop is intentionally synchronous and single-threaded: the simulated
//! system is closed (no real I/O), so determinism and debuggability dominate
//! any concurrency concern. Parallelism lives one level up, where experiment
//! harnesses fan independent *runs* out across threads.

use crate::queue::{EventKey, EventQueue};
use crate::time::{SimDuration, SimTime};
use std::time::{Duration, Instant};

/// Engine-level performance counters: how much simulated work was done and
/// how long the host took to do it. Wall-clock never feeds back into the
/// simulation — results stay bit-identical whatever the host speed — it is
/// only read out afterwards by experiment harnesses (events/sec trajectory
/// in `BENCH.json`).
#[derive(Debug, Clone, Copy, Default)]
pub struct EnginePerf {
    /// Events processed so far.
    pub events: u64,
    /// Host wall-clock time spent inside [`Simulator::run_until`] /
    /// [`Simulator::run_to_completion`] loops.
    pub wall: Duration,
}

impl EnginePerf {
    /// Events processed per wall-clock second (0 when no time elapsed).
    pub fn events_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s > 0.0 {
            self.events as f64 / s
        } else {
            0.0
        }
    }
}

/// The mutable state of a simulation plus its event-handling logic.
pub trait World {
    /// The event alphabet of this world.
    type Event;

    /// Handles one event at the context's current time. New events are
    /// scheduled through `ctx`.
    fn handle(&mut self, event: Self::Event, ctx: &mut Ctx<'_, Self::Event>);
}

/// Scheduling context passed to [`World::handle`].
pub struct Ctx<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
}

impl<'a, E> Ctx<'a, E> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Panics if `at` is in the past; events in the present (`at == now`)
    /// are allowed and run after all earlier-scheduled events for this
    /// instant.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventKey {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {}",
            self.now
        );
        self.queue.push(at, event)
    }

    /// Schedules `event` after a delay from now.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventKey {
        self.queue.push(self.now + delay, event)
    }

    /// Cancels a scheduled event; `true` if it was still pending.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        self.queue.cancel(key)
    }

    /// Number of events pending in the future event list.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// Drives a [`World`] through simulated time.
pub struct Simulator<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    now: SimTime,
    processed: u64,
    wall: Duration,
}

impl<W: World> Simulator<W> {
    /// Creates a simulator around an initial world state, using the
    /// calendar-queue hot path for the future event list.
    pub fn new(world: W) -> Self {
        Self::with_queue(world, EventQueue::new())
    }

    /// Creates a simulator on the legacy heap-queue reference path — the
    /// retained original implementation the fingerprint-equality suites
    /// compare the hot path against.
    pub fn new_reference(world: W) -> Self {
        Self::with_queue(world, EventQueue::new_reference())
    }

    fn with_queue(world: W, queue: EventQueue<W::Event>) -> Self {
        Simulator {
            world,
            queue,
            now: SimTime::ZERO,
            processed: 0,
            wall: Duration::ZERO,
        }
    }

    /// Performance counters accumulated so far (events processed, host
    /// wall-clock spent in the run loops).
    pub fn perf(&self) -> EnginePerf {
        EnginePerf {
            events: self.processed,
            wall: self.wall,
        }
    }

    /// Current simulated time (time of the most recently processed event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Immutable access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (for seeding state between phases and
    /// extracting metrics afterwards).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the simulator, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedules an event from outside the event loop (experiment setup).
    pub fn schedule_at(&mut self, at: SimTime, event: W::Event) -> EventKey {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, event)
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: W::Event) -> EventKey {
        self.queue.push(self.now + delay, event)
    }

    /// Processes a single event. Returns `false` when the event list is
    /// empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some((t, ev)) => {
                debug_assert!(t >= self.now, "event list went backwards");
                self.now = t;
                let mut ctx = Ctx {
                    now: t,
                    queue: &mut self.queue,
                };
                self.world.handle(ev, &mut ctx);
                self.processed += 1;
                true
            }
            None => false,
        }
    }

    /// Runs until the event list is exhausted or `end` is reached. Events
    /// scheduled exactly at `end` are processed; later ones are left queued.
    /// Afterwards the clock reads `end` (or the last event time if the list
    /// drained first).
    pub fn run_until(&mut self, end: SimTime) {
        let t0 = Instant::now();
        loop {
            match self.queue.peek_time() {
                Some(t) if t <= end => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.now < end {
            self.now = end;
        }
        self.wall += t0.elapsed();
    }

    /// Runs until the event list is exhausted.
    pub fn run_to_completion(&mut self) {
        let t0 = Instant::now();
        while self.step() {}
        self.wall += t0.elapsed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy world: a counter that reschedules itself a fixed number of
    /// times, plus a cancellable one-shot.
    struct Toy {
        ticks: Vec<SimTime>,
        remaining: u32,
        period: SimDuration,
        fired_oneshot: bool,
        oneshot_key: Option<EventKey>,
    }

    enum ToyEvent {
        Tick,
        OneShot,
        CancelOneShot,
    }

    impl World for Toy {
        type Event = ToyEvent;
        fn handle(&mut self, event: ToyEvent, ctx: &mut Ctx<'_, ToyEvent>) {
            match event {
                ToyEvent::Tick => {
                    self.ticks.push(ctx.now());
                    if self.remaining > 0 {
                        self.remaining -= 1;
                        ctx.schedule_in(self.period, ToyEvent::Tick);
                    }
                }
                ToyEvent::OneShot => self.fired_oneshot = true,
                ToyEvent::CancelOneShot => {
                    if let Some(k) = self.oneshot_key.take() {
                        ctx.cancel(k);
                    }
                }
            }
        }
    }

    fn toy() -> Toy {
        Toy {
            ticks: Vec::new(),
            remaining: 0,
            period: SimDuration::from_millis(10),
            fired_oneshot: false,
            oneshot_key: None,
        }
    }

    #[test]
    fn periodic_self_rescheduling() {
        let mut world = toy();
        world.remaining = 4;
        let mut sim = Simulator::new(world);
        sim.schedule_at(SimTime::from_millis(0), ToyEvent::Tick);
        sim.run_to_completion();
        assert_eq!(
            sim.world().ticks,
            vec![
                SimTime::from_millis(0),
                SimTime::from_millis(10),
                SimTime::from_millis(20),
                SimTime::from_millis(30),
                SimTime::from_millis(40),
            ]
        );
        assert_eq!(sim.events_processed(), 5);
    }

    #[test]
    fn run_until_is_inclusive_and_advances_clock() {
        let mut world = toy();
        world.remaining = 100;
        let mut sim = Simulator::new(world);
        sim.schedule_at(SimTime::from_millis(0), ToyEvent::Tick);
        sim.run_until(SimTime::from_millis(25));
        // Ticks at 0, 10, 20 processed; 30 still queued.
        assert_eq!(sim.world().ticks.len(), 3);
        assert_eq!(sim.now(), SimTime::from_millis(25));
        sim.run_until(SimTime::from_millis(30));
        assert_eq!(sim.world().ticks.len(), 4);
        assert_eq!(sim.now(), SimTime::from_millis(30));
    }

    #[test]
    fn timer_cancellation() {
        let mut sim = Simulator::new(toy());
        let key = sim.schedule_at(SimTime::from_millis(50), ToyEvent::OneShot);
        sim.world_mut().oneshot_key = Some(key);
        sim.schedule_at(SimTime::from_millis(10), ToyEvent::CancelOneShot);
        sim.run_to_completion();
        assert!(!sim.world().fired_oneshot);
        // The cancel event itself still counts as processed.
        assert_eq!(sim.events_processed(), 1);
    }

    #[test]
    fn oneshot_fires_without_cancel() {
        let mut sim = Simulator::new(toy());
        sim.schedule_at(SimTime::from_millis(50), ToyEvent::OneShot);
        sim.run_to_completion();
        assert!(sim.world().fired_oneshot);
        assert_eq!(sim.now(), SimTime::from_millis(50));
    }

    #[test]
    fn step_returns_false_when_drained() {
        let mut sim = Simulator::new(toy());
        assert!(!sim.step());
        sim.schedule_at(SimTime::from_millis(1), ToyEvent::OneShot);
        assert!(sim.step());
        assert!(!sim.step());
    }

    #[test]
    fn perf_counters_track_run_loops() {
        let mut world = toy();
        world.remaining = 50;
        let mut sim = Simulator::new(world);
        assert_eq!(sim.perf().events, 0);
        assert_eq!(sim.perf().wall, std::time::Duration::ZERO);
        sim.schedule_at(SimTime::from_millis(0), ToyEvent::Tick);
        sim.run_until(SimTime::from_millis(200));
        let mid = sim.perf();
        assert_eq!(mid.events, 21);
        sim.run_to_completion();
        let done = sim.perf();
        assert_eq!(done.events, 51);
        // Wall-clock accumulates across run loops and events/sec follows.
        assert!(done.wall >= mid.wall);
        if done.wall > std::time::Duration::ZERO {
            assert!(done.events_per_sec() > 0.0);
        }
    }

    #[test]
    #[should_panic]
    fn scheduling_into_past_panics() {
        let mut sim = Simulator::new(toy());
        sim.schedule_at(SimTime::from_millis(5), ToyEvent::OneShot);
        sim.run_to_completion();
        // now == 5ms; scheduling at 1ms must panic.
        sim.schedule_at(SimTime::from_millis(1), ToyEvent::OneShot);
    }
}
