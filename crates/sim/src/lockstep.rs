//! Deterministic intra-run parallelism: spatially sharded worlds advancing
//! in time-lockstep epochs.
//!
//! [`crate::engine`] keeps each world single-threaded; `wgtt_bench::par`
//! fans independent *runs* across threads. This module adds the missing
//! middle layer: one run whose world is partitioned into independent
//! shards that advance **in parallel between synchronization points** —
//! the coordinator/lockstep radio-emulation design (each radio
//! neighborhood owns its own event clock; a coordinator only lets a shard
//! run ahead while nothing outside it could affect it).
//!
//! ## Determinism contract
//!
//! Results must be byte-identical at any worker count, including 1:
//!
//! 1. Within an epoch every shard advances *only its own* event queue to
//!    the shared horizon; shards share no mutable state, so the order in
//!    which workers pick shards is invisible.
//! 2. All cross-shard effects are staged and applied by `at_barrier`,
//!    which runs on exactly one thread, between epochs, over shard state
//!    that is already worker-count-independent (point 1). Callers apply
//!    staged messages in a fixed total order — sender shard id, then the
//!    sender's deterministic sequence number.
//! 3. The epoch length must not exceed the minimum cross-shard latency
//!    (the caller derives it; see `wgtt_core::shard`), so deferring a
//!    cross-shard effect to the barrier never delivers it later than the
//!    modeled latency would.
//!
//! The worker pool reuses the `wgtt_bench::par` job-claiming idiom:
//! workers pull the next unclaimed shard index from a shared atomic
//! counter inside a `std::thread::scope` — no external dependencies.

use crate::time::{SimDuration, SimTime};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the lockstep worker count.
/// Absent (or `1`) selects the serial reference path.
pub const WORKERS_ENV: &str = "WGTT_WORLD_WORKERS";

/// Worker count for a sharded run: `WGTT_WORLD_WORKERS` if set (and ≥ 1),
/// otherwise 1 — the serial reference engine. Never more than the number
/// of shards. Unlike the experiment fan-out, the default is *serial*:
/// parallelism inside a run is opt-in, so unconfigured runs stay on the
/// exact code path the fingerprint suites pin.
pub fn worker_count(shards: usize) -> usize {
    std::env::var(WORKERS_ENV)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
        .min(shards.max(1))
}

/// One spatial partition of a sharded world: everything it needs to
/// advance its own event queue to a horizon, independently of its peers.
pub trait LockstepShard: Send {
    /// Runs this shard's event loop up to and including `horizon`.
    /// Afterwards the shard's clock reads exactly `horizon`.
    fn advance_to(&mut self, horizon: SimTime);
}

/// Drives `shards` from `start` to `end` in lockstep epochs of length
/// `epoch` on `workers` threads. After every epoch, `at_barrier(shards,
/// horizon)` runs serially to exchange cross-shard state (mailbox
/// application, boundary migration); it also runs once at `end`.
///
/// `workers <= 1` is the serial reference path: a plain loop over shards
/// in index order with no threads, locks, or atomics — byte-identical
/// output is the contract, identical machine code is the proof that the
/// 1-worker configuration can never diverge from it.
pub fn drive<S, F>(
    shards: &mut [S],
    workers: usize,
    start: SimTime,
    end: SimTime,
    epoch: SimDuration,
    mut at_barrier: F,
) where
    S: LockstepShard,
    F: FnMut(&mut [S], SimTime),
{
    assert!(
        epoch > SimDuration::from_micros(0),
        "lockstep epoch must be positive"
    );
    let mut now = start;
    while now < end {
        let horizon = (now + epoch).min(end);
        if workers <= 1 || shards.len() <= 1 {
            for shard in shards.iter_mut() {
                shard.advance_to(horizon);
            }
        } else {
            advance_parallel(shards, workers, horizon);
        }
        at_barrier(shards, horizon);
        now = horizon;
    }
}

/// One epoch's parallel advance: workers claim shard indices from a
/// shared counter and run each claimed shard to the horizon. The scope
/// join is the epoch barrier — no shard of epoch *k+1* can start before
/// every shard finished epoch *k*.
fn advance_parallel<S: LockstepShard>(shards: &mut [S], workers: usize, horizon: SimTime) {
    let n = shards.len();
    let jobs: Vec<Mutex<&mut S>> = shards.iter_mut().map(Mutex::new).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let jobs = &jobs;
        let next = &next;
        for _ in 0..workers.min(n) {
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                jobs[i]
                    .lock()
                    .expect("shard slot poisoned")
                    .advance_to(horizon);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy shard: records every horizon it was advanced to, plus an
    /// inbox of barrier-applied values.
    struct Toy {
        horizons: Vec<SimTime>,
        inbox: Vec<u64>,
    }

    impl LockstepShard for Toy {
        fn advance_to(&mut self, horizon: SimTime) {
            self.horizons.push(horizon);
        }
    }

    fn toys(n: usize) -> Vec<Toy> {
        (0..n)
            .map(|_| Toy {
                horizons: Vec::new(),
                inbox: Vec::new(),
            })
            .collect()
    }

    #[test]
    fn horizons_are_identical_at_any_worker_count() {
        let mut reference: Option<Vec<Vec<SimTime>>> = None;
        for workers in [1usize, 2, 4, 8] {
            let mut shards = toys(5);
            drive(
                &mut shards,
                workers,
                SimTime::ZERO,
                SimTime::from_millis(95),
                SimDuration::from_millis(10),
                |_, _| {},
            );
            let got: Vec<Vec<SimTime>> = shards.into_iter().map(|s| s.horizons).collect();
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(want, &got, "workers={workers} diverged"),
            }
        }
        // Final short epoch is clamped to `end`.
        let r = reference.unwrap();
        assert_eq!(r[0].len(), 10);
        assert_eq!(*r[0].last().unwrap(), SimTime::from_millis(95));
    }

    #[test]
    fn barrier_runs_after_every_epoch_and_sees_all_shards() {
        let mut shards = toys(3);
        let mut barrier_times = Vec::new();
        drive(
            &mut shards,
            4,
            SimTime::ZERO,
            SimTime::from_millis(30),
            SimDuration::from_millis(10),
            |shards, h| {
                // Every shard has already reached the horizon.
                for s in shards.iter() {
                    assert_eq!(*s.horizons.last().unwrap(), h);
                }
                barrier_times.push(h);
                // The barrier can mutate shard state (mailbox delivery).
                for s in shards.iter_mut() {
                    s.inbox.push(h.as_micros());
                }
            },
        );
        assert_eq!(
            barrier_times,
            vec![
                SimTime::from_millis(10),
                SimTime::from_millis(20),
                SimTime::from_millis(30),
            ]
        );
        assert_eq!(shards[0].inbox.len(), 3);
    }

    #[test]
    fn zero_length_window_runs_no_epochs() {
        let mut shards = toys(2);
        let mut calls = 0;
        drive(
            &mut shards,
            2,
            SimTime::from_millis(5),
            SimTime::from_millis(5),
            SimDuration::from_millis(1),
            |_, _| calls += 1,
        );
        assert_eq!(calls, 0);
        assert!(shards[0].horizons.is_empty());
    }

    #[test]
    fn worker_count_env_and_caps() {
        // No env: serial. (Tests elsewhere never set the var globally.)
        std::env::remove_var(WORKERS_ENV);
        assert_eq!(worker_count(8), 1);
        std::env::set_var(WORKERS_ENV, "4");
        assert_eq!(worker_count(8), 4);
        assert_eq!(worker_count(2), 2, "never more workers than shards");
        std::env::set_var(WORKERS_ENV, "0");
        assert_eq!(worker_count(8), 1, "invalid values fall back to serial");
        std::env::remove_var(WORKERS_ENV);
    }

    #[test]
    #[should_panic]
    fn zero_epoch_panics() {
        let mut shards = toys(1);
        drive(
            &mut shards,
            1,
            SimTime::ZERO,
            SimTime::from_millis(1),
            SimDuration::from_micros(0),
            |_, _| {},
        );
    }
}
