//! Deterministic random number generation for simulations.
//!
//! Every experiment run owns a [`SimRng`] seeded from the run configuration,
//! so results are exactly reproducible. The wrapper also provides the
//! distributions the PHY and protocol models need — normal, exponential,
//! Rayleigh, and Rician — implemented directly (Box–Muller and friends) so
//! the only external dependency is `rand` itself.
//!
//! Independent sub-streams (e.g. one per client–AP wireless link, one per
//! processing-delay model) are derived with [`SimRng::fork`], which hashes a
//! label into a child seed. Forked streams are statistically independent and
//! stable across runs regardless of the order other components draw in —
//! this is what keeps, say, AP 3's fading trace identical whether or not a
//! second client is added to the experiment.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Deterministic RNG with the distribution helpers used across the WGTT
/// model.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator identified by `label`.
    ///
    /// The child seed depends only on the parent *seed* and the label (not
    /// on how many values the parent has drawn), so forked streams are
    /// stable under unrelated changes to the simulation.
    pub fn fork(&self, label: &str) -> SimRng {
        // FNV-1a over the label, mixed with the parent seed via splitmix64.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut z = self.seed ^ h;
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::new(z)
    }

    /// Derives an independent child generator from an integer index,
    /// convenient for per-entity streams ("link 3", "client 1", ...).
    pub fn fork_indexed(&self, label: &str, index: u64) -> SimRng {
        self.fork(&format!("{label}#{index}"))
    }

    /// Uniform sample from a range, e.g. `rng.range(0..16)`.
    pub fn range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Standard normal sample via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1: f64 = 1.0 - self.inner.gen::<f64>();
        let u2: f64 = self.inner.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        debug_assert!(std_dev >= 0.0);
        mean + std_dev * self.standard_normal()
    }

    /// Exponential sample with the given mean (`1/λ`).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u: f64 = 1.0 - self.inner.gen::<f64>();
        -mean * u.ln()
    }

    /// Rayleigh-distributed amplitude with scale `sigma`
    /// (mean power = `2*sigma^2`).
    pub fn rayleigh(&mut self, sigma: f64) -> f64 {
        let u: f64 = 1.0 - self.inner.gen::<f64>();
        sigma * (-2.0 * u.ln()).sqrt()
    }

    /// Rician-distributed amplitude with K-factor `k` (linear, not dB) and
    /// total mean power `omega`.
    ///
    /// Models a channel with a line-of-sight component of power
    /// `k/(k+1)*omega` plus scattered power `omega/(k+1)`; `k = 0`
    /// degenerates to Rayleigh fading.
    pub fn rician(&mut self, k: f64, omega: f64) -> f64 {
        debug_assert!(k >= 0.0 && omega > 0.0);
        let los = (k * omega / (k + 1.0)).sqrt();
        let sigma = (omega / (2.0 * (k + 1.0))).sqrt();
        let x = los + sigma * self.standard_normal();
        let y = sigma * self.standard_normal();
        (x * x + y * y).sqrt()
    }

    /// A uniformly random phase in `[0, 2π)`.
    pub fn phase(&mut self) -> f64 {
        self.inner.gen::<f64>() * 2.0 * std::f64::consts::PI
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn fork_is_stable_and_independent_of_draws() {
        let parent1 = SimRng::new(99);
        let mut parent2 = SimRng::new(99);
        // Drain some values from parent2 before forking.
        for _ in 0..10 {
            parent2.next_u64();
        }
        let mut c1 = parent1.fork("link");
        let mut c2 = parent2.fork("link");
        for _ in 0..16 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn fork_labels_are_distinct() {
        let parent = SimRng::new(5);
        let mut a = parent.fork("alpha");
        let mut b = parent.fork("beta");
        assert_ne!(a.next_u64(), b.next_u64());
        let mut i0 = parent.fork_indexed("link", 0);
        let mut i1 = parent.fork_indexed("link", 1);
        assert_ne!(i0.next_u64(), i1.next_u64());
    }

    #[test]
    fn unit_in_range() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::new(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(13);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean {mean}");
        // Exponential samples are non-negative.
        assert!((0..100).all(|_| r.exponential(1.0) >= 0.0));
    }

    #[test]
    fn rayleigh_mean_power() {
        let mut r = SimRng::new(17);
        let sigma = 1.5;
        let n = 20_000;
        let pwr = (0..n).map(|_| r.rayleigh(sigma).powi(2)).sum::<f64>() / n as f64;
        assert!((pwr - 2.0 * sigma * sigma).abs() < 0.2, "power {pwr}");
    }

    #[test]
    fn rician_mean_power_and_k_limit() {
        let mut r = SimRng::new(19);
        let n = 20_000;
        // Total power should equal omega regardless of K.
        for &k in &[0.0, 1.0, 6.0] {
            let pwr = (0..n).map(|_| r.rician(k, 2.0).powi(2)).sum::<f64>() / n as f64;
            assert!((pwr - 2.0).abs() < 0.15, "K={k} power {pwr}");
        }
        // Large K concentrates amplitude near sqrt(omega): variance shrinks.
        let var_k0: f64 = {
            let s: Vec<f64> = (0..n).map(|_| r.rician(0.0, 1.0)).collect();
            let m = s.iter().sum::<f64>() / n as f64;
            s.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n as f64
        };
        let var_k20: f64 = {
            let s: Vec<f64> = (0..n).map(|_| r.rician(20.0, 1.0)).collect();
            let m = s.iter().sum::<f64>() / n as f64;
            s.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n as f64
        };
        assert!(var_k20 < var_k0 / 4.0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(23);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
