//! Deterministic random number generation for simulations.
//!
//! Every experiment run owns a [`SimRng`] seeded from the run configuration,
//! so results are exactly reproducible. The generator is self-contained —
//! xoshiro256** seeded via splitmix64, with the distributions the PHY and
//! protocol models need (normal, exponential, Rayleigh, Rician) implemented
//! directly (Box–Muller and friends) — so the simulation core has no
//! external dependencies at all.
//!
//! Independent sub-streams (e.g. one per client–AP wireless link, one per
//! processing-delay model) are derived with [`SimRng::fork`], which hashes a
//! label into a child seed. Forked streams are statistically independent and
//! stable across runs regardless of the order other components draw in —
//! this is what keeps, say, AP 3's fading trace identical whether or not a
//! second client is added to the experiment.

use std::ops::{Range, RangeInclusive};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic RNG with the distribution helpers used across the WGTT
/// model.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // Expand the seed into xoshiro state with splitmix64, the
        // initialization the xoshiro authors recommend.
        let mut state = seed;
        SimRng {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
            seed,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator identified by `label`.
    ///
    /// The child seed depends only on the parent *seed* and the label (not
    /// on how many values the parent has drawn), so forked streams are
    /// stable under unrelated changes to the simulation.
    pub fn fork(&self, label: &str) -> SimRng {
        // FNV-1a over the label, mixed with the parent seed via splitmix64.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut z = self.seed ^ h;
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::new(z)
    }

    /// Derives an independent child generator from an integer index,
    /// convenient for per-entity streams ("link 3", "client 1", ...).
    pub fn fork_indexed(&self, label: &str, index: u64) -> SimRng {
        self.fork(&format!("{label}#{index}"))
    }

    /// Next raw 64-bit value (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit value (upper half of a 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills a byte slice with random data.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero. Rejection
    /// sampling, so the distribution is exactly uniform.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - u64::MAX.wrapping_rem(bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform sample from a range, e.g. `rng.range(0..16)` or
    /// `rng.range(0.0..1.5)`. Half-open and inclusive integer ranges and
    /// half-open float ranges are supported.
    pub fn range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Uniform `f64` in `[0, 1)` — 53 random mantissa bits.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Standard normal sample via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1: f64 = 1.0 - self.unit();
        let u2: f64 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        debug_assert!(std_dev >= 0.0);
        mean + std_dev * self.standard_normal()
    }

    /// Exponential sample with the given mean (`1/λ`).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u: f64 = 1.0 - self.unit();
        -mean * u.ln()
    }

    /// Rayleigh-distributed amplitude with scale `sigma`
    /// (mean power = `2*sigma^2`).
    pub fn rayleigh(&mut self, sigma: f64) -> f64 {
        let u: f64 = 1.0 - self.unit();
        sigma * (-2.0 * u.ln()).sqrt()
    }

    /// Rician-distributed amplitude with K-factor `k` (linear, not dB) and
    /// total mean power `omega`.
    ///
    /// Models a channel with a line-of-sight component of power
    /// `k/(k+1)*omega` plus scattered power `omega/(k+1)`; `k = 0`
    /// degenerates to Rayleigh fading.
    pub fn rician(&mut self, k: f64, omega: f64) -> f64 {
        debug_assert!(k >= 0.0 && omega > 0.0);
        let los = (k * omega / (k + 1.0)).sqrt();
        let sigma = (omega / (2.0 * (k + 1.0))).sqrt();
        let x = los + sigma * self.standard_normal();
        let y = sigma * self.standard_normal();
        (x * x + y * y).sqrt()
    }

    /// A uniformly random phase in `[0, 2π)`.
    pub fn phase(&mut self) -> f64 {
        self.unit() * 2.0 * std::f64::consts::PI
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// Ranges [`SimRng::range`] can sample from. The stand-in for rand's
/// `SampleRange`, scoped to the numeric types the simulation uses.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut SimRng) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut SimRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut SimRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut SimRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (rng.unit() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn fork_is_stable_and_independent_of_draws() {
        let parent1 = SimRng::new(99);
        let mut parent2 = SimRng::new(99);
        // Drain some values from parent2 before forking.
        for _ in 0..10 {
            parent2.next_u64();
        }
        let mut c1 = parent1.fork("link");
        let mut c2 = parent2.fork("link");
        for _ in 0..16 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn fork_labels_are_distinct() {
        let parent = SimRng::new(5);
        let mut a = parent.fork("alpha");
        let mut b = parent.fork("beta");
        assert_ne!(a.next_u64(), b.next_u64());
        let mut i0 = parent.fork_indexed("link", 0);
        let mut i1 = parent.fork_indexed("link", 1);
        assert_ne!(i0.next_u64(), i1.next_u64());
    }

    #[test]
    fn unit_in_range() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_bounds_hold() {
        let mut r = SimRng::new(8);
        for _ in 0..1000 {
            let v = r.range(3u32..17);
            assert!((3..17).contains(&v));
            let w: u32 = r.range(0..=5);
            assert!(w <= 5);
            let f = r.range(-2.5f64..4.5);
            assert!((-2.5..4.5).contains(&f));
        }
        // Degenerate inclusive range.
        assert_eq!(r.range(9u64..=9), 9);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::new(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(13);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean {mean}");
        // Exponential samples are non-negative.
        assert!((0..100).all(|_| r.exponential(1.0) >= 0.0));
    }

    #[test]
    fn rayleigh_mean_power() {
        let mut r = SimRng::new(17);
        let sigma = 1.5;
        let n = 20_000;
        let pwr = (0..n).map(|_| r.rayleigh(sigma).powi(2)).sum::<f64>() / n as f64;
        assert!((pwr - 2.0 * sigma * sigma).abs() < 0.2, "power {pwr}");
    }

    #[test]
    fn rician_mean_power_and_k_limit() {
        let mut r = SimRng::new(19);
        let n = 20_000;
        // Total power should equal omega regardless of K.
        for &k in &[0.0, 1.0, 6.0] {
            let pwr = (0..n).map(|_| r.rician(k, 2.0).powi(2)).sum::<f64>() / n as f64;
            assert!((pwr - 2.0).abs() < 0.15, "K={k} power {pwr}");
        }
        // Large K concentrates amplitude near sqrt(omega): variance shrinks.
        let var_k0: f64 = {
            let s: Vec<f64> = (0..n).map(|_| r.rician(0.0, 1.0)).collect();
            let m = s.iter().sum::<f64>() / n as f64;
            s.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n as f64
        };
        let var_k20: f64 = {
            let s: Vec<f64> = (0..n).map(|_| r.rician(20.0, 1.0)).collect();
            let m = s.iter().sum::<f64>() / n as f64;
            s.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n as f64
        };
        assert!(var_k20 < var_k0 / 4.0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(23);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
