//! # wgtt-sim — deterministic discrete-event simulation engine
//!
//! The foundation of the *Wi-Fi Goes to Town* reproduction: simulated time,
//! a future event list with stable tie-breaking and cancellation, a
//! deterministic forkable RNG, the event loop itself, and the statistics
//! primitives every experiment shares.
//!
//! Everything above this crate (PHY, MAC, network stack, the WGTT control
//! plane) is written as poll-style state machines driven by a [`World`]
//! implementation; this crate supplies the clockwork.
//!
//! ```
//! use wgtt_sim::{Simulator, World, Ctx, SimTime, SimDuration};
//!
//! struct Counter(u32);
//! impl World for Counter {
//!     type Event = ();
//!     fn handle(&mut self, _ev: (), ctx: &mut Ctx<'_, ()>) {
//!         self.0 += 1;
//!         if self.0 < 3 {
//!             ctx.schedule_in(SimDuration::from_millis(1), ());
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new(Counter(0));
//! sim.schedule_at(SimTime::ZERO, ());
//! sim.run_to_completion();
//! assert_eq!(sim.world().0, 3);
//! assert_eq!(sim.now(), SimTime::from_millis(2));
//! ```

pub mod engine;
pub mod fault;
pub mod lockstep;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod storm;
pub mod time;

pub use engine::{Ctx, EnginePerf, Simulator, World};
pub use fault::{
    ApOutage, BackhaulFault, BackhaulImpairment, ControllerOutage, CsiDropWindow, DupWindow,
    FaultEdge, FaultSchedule, JournalLagWindow, MigrationFaultWindow, PartitionWindow,
    ReorderWindow,
};
pub use lockstep::{worker_count, LockstepShard, WORKERS_ENV};
pub use queue::{EventKey, EventQueue};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
