//! Deterministic fault injection.
//!
//! A [`FaultSchedule`] is a declarative list of *when things break*: AP
//! crash/reboot windows, backhaul impairment windows (extra packet loss,
//! added latency, jitter inflation), controller-link partitions, and CSI
//! report drop windows. The schedule is pure data — it never draws random
//! numbers itself — so the same schedule replayed against the same seed
//! reproduces the identical event sequence bit for bit.
//!
//! Random *generation* of schedules (for resilience sweeps) goes through
//! [`FaultSchedule::random_outages`] with an explicit [`SimRng`], which
//! callers derive via [`SimRng::fork`] so the fault draws never perturb
//! the channel/traffic streams. An empty schedule answers every query
//! with "healthy" without consuming any randomness, which keeps
//! fault-capable builds bit-identical to fault-free ones.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// One AP outage: the AP is dead in `[from, until)` and reboots (with all
/// soft state lost) at `until`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApOutage {
    /// Index of the AP that fails.
    pub ap: usize,
    /// Crash instant.
    pub from: SimTime,
    /// Reboot instant (exclusive end of the outage).
    pub until: SimTime,
}

/// Backhaul impairment window: during `[from, until)` every backhaul
/// message suffers `extra_loss_prob` additional loss, `extra_latency`
/// added fixed delay, and exponential jitter with mean
/// `extra_jitter_mean` on top of the healthy model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackhaulFault {
    /// Window start.
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Additional independent loss probability.
    pub extra_loss_prob: f64,
    /// Added fixed one-way latency.
    pub extra_latency: SimDuration,
    /// Mean of additional exponential jitter (zero = none).
    pub extra_jitter_mean: SimDuration,
}

/// Controller-link partition: the AP's radio keeps running but nothing
/// crosses the wire between it and the controller during `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// The partitioned AP.
    pub ap: usize,
    /// Window start.
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

/// Controller outage: the central controller process is dead in
/// `[from, until)` and restarts (with all soft state lost) at `until`.
/// While down it sends nothing, drops every AP report delivered to it,
/// and fires no switch timeouts; on restart it must resynchronise its
/// state from the APs before issuing new switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControllerOutage {
    /// Crash instant.
    pub from: SimTime,
    /// Restart instant (exclusive end of the outage).
    pub until: SimTime,
}

/// Journal-lag window: during `[from, until)` every primary→standby
/// journal batch suffers `extra` additional one-way delay on top of the
/// backhaul model (a congested replication link). Lag close to the
/// standby's takeover timeout widens the window of journal state the
/// takeover never saw — the knob the replication bench sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalLagWindow {
    /// Window start.
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Added one-way journal delivery delay.
    pub extra: SimDuration,
}

/// CSI-report drop window: each CSI report is independently discarded with
/// `drop_prob` during `[from, until)` (a flaky CSI extraction tool).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CsiDropWindow {
    /// Window start.
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Per-report drop probability.
    pub drop_prob: f64,
}

/// Backhaul duplication window: during `[from, until)` each delivered
/// message is independently delivered a *second* time with probability
/// `dup_prob`, the copy trailing the original by one extra jitter sample
/// (a kernel-datapath retransmit under load, cf. bridged-AP duplication).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DupWindow {
    /// Window start.
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Per-message duplication probability.
    pub dup_prob: f64,
}

/// Backhaul reordering window: during `[from, until)` each delivered
/// message is independently held back with probability `reorder_prob` by a
/// uniform draw from `(0, window]`, letting messages sent just after it
/// overtake it — order swaps bounded by `window`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReorderWindow {
    /// Window start.
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Per-message reorder probability.
    pub reorder_prob: f64,
    /// Maximum extra hold-back (bounds how far order can swap).
    pub window: SimDuration,
}

/// Seam-migration fault window: during `[from, until)` each
/// inter-controller migration frame (prepare, commit, residue forward, or
/// ack) crossing the shard seam is independently affected with `prob` —
/// lost for windows in [`FaultSchedule::migration_loss`], delivered a
/// second time for windows in [`FaultSchedule::migration_dup`]. These
/// target only the controller-to-controller transfer channel, never
/// AP-to-controller traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationFaultWindow {
    /// Window start.
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Per-frame loss or duplication probability.
    pub prob: f64,
}

/// The aggregate backhaul impairment in effect at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BackhaulImpairment {
    /// Additional loss probability (windows compose independently).
    pub extra_loss_prob: f64,
    /// Added fixed latency (windows sum).
    pub extra_latency: SimDuration,
    /// Added exponential-jitter mean (windows sum).
    pub extra_jitter_mean: SimDuration,
    /// Duplication probability (windows compose independently).
    pub dup_prob: f64,
    /// Reorder probability (windows compose independently).
    pub reorder_prob: f64,
    /// Maximum reorder hold-back (windows take the max).
    pub reorder_window: SimDuration,
}

impl BackhaulImpairment {
    /// Whether this impairment changes anything at all.
    pub fn is_noop(&self) -> bool {
        self.extra_loss_prob <= 0.0
            && self.extra_latency == SimDuration::ZERO
            && self.extra_jitter_mean == SimDuration::ZERO
            && self.dup_prob <= 0.0
            && self.reorder_prob <= 0.0
    }
}

/// A crash or reboot edge, for priming simulator events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEdge {
    /// AP `.0` crashes.
    Crash(usize),
    /// AP `.0` comes back up.
    Reboot(usize),
    /// The central controller crashes.
    ControllerCrash,
    /// The central controller restarts (soft state lost).
    ControllerRecover,
    /// The crashed ex-primary wakes as a **zombie**: a warm standby took
    /// over its reign while it was down, so instead of restarting as the
    /// controller it comes back believing it still holds the old term and
    /// immediately tries to reassert itself — the split-brain scenario the
    /// AP-side term guards must fence out.
    ZombieWake,
}

/// The full fault plan for one run. Empty by default (= healthy run).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    /// AP crash/reboot windows.
    pub ap_outages: Vec<ApOutage>,
    /// Backhaul impairment windows.
    pub backhaul: Vec<BackhaulFault>,
    /// Controller-link partitions.
    pub partitions: Vec<PartitionWindow>,
    /// Controller crash/restart windows.
    pub controller_crashes: Vec<ControllerOutage>,
    /// Controller failover windows: the primary crashes at `from` with a
    /// warm standby armed to take over, and wakes as a zombie at `until`.
    pub controller_failovers: Vec<ControllerOutage>,
    /// Journal replication lag windows.
    pub journal_lag: Vec<JournalLagWindow>,
    /// CSI-report drop windows.
    pub csi_drops: Vec<CsiDropWindow>,
    /// Backhaul duplication windows.
    pub duplication: Vec<DupWindow>,
    /// Backhaul reordering windows.
    pub reordering: Vec<ReorderWindow>,
    /// Seam-migration frame loss windows.
    pub migration_loss: Vec<MigrationFaultWindow>,
    /// Seam-migration frame duplication windows.
    pub migration_dup: Vec<MigrationFaultWindow>,
}

impl FaultSchedule {
    /// An empty (healthy) schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether nothing is scheduled — the healthy fast path.
    pub fn is_empty(&self) -> bool {
        self.window_count() == 0
    }

    /// Total number of fault windows across every family. The exhaustive
    /// destructure makes adding a window family without counting it here a
    /// compile error — `is_empty` (the healthy fast path) and the storm
    /// shrinker both lean on this being complete.
    pub fn window_count(&self) -> usize {
        let Self {
            ap_outages,
            backhaul,
            partitions,
            controller_crashes,
            controller_failovers,
            journal_lag,
            csi_drops,
            duplication,
            reordering,
            migration_loss,
            migration_dup,
        } = self;
        ap_outages.len()
            + backhaul.len()
            + partitions.len()
            + controller_crashes.len()
            + controller_failovers.len()
            + journal_lag.len()
            + csi_drops.len()
            + duplication.len()
            + reordering.len()
            + migration_loss.len()
            + migration_dup.len()
    }

    /// Asserts a new `[from, until)` window is non-empty and disjoint from
    /// every existing window of the same kind on the same target. Silently
    /// stacking overlapping crash windows would make one target crash
    /// "twice" at once and fire reboot edges inside a later outage.
    fn assert_window(
        kind: &str,
        existing: impl Iterator<Item = (SimTime, SimTime)>,
        from: SimTime,
        until: SimTime,
    ) {
        assert!(from < until, "{kind} window must be non-empty");
        for (f, u) in existing {
            assert!(
                until <= f || u <= from,
                "{kind} window [{from}, {until}) overlaps existing [{f}, {u}) on the same target"
            );
        }
    }

    /// Adds an AP outage window (builder style). Panics on a zero-length
    /// window or one overlapping an existing outage of the same AP.
    pub fn with_ap_outage(mut self, ap: usize, from: SimTime, until: SimTime) -> Self {
        Self::assert_window(
            "outage",
            self.ap_outages
                .iter()
                .filter(|o| o.ap == ap)
                .map(|o| (o.from, o.until)),
            from,
            until,
        );
        self.ap_outages.push(ApOutage { ap, from, until });
        self
    }

    /// Adds a backhaul impairment window (builder style).
    pub fn with_backhaul_fault(mut self, fault: BackhaulFault) -> Self {
        assert!(
            fault.from < fault.until,
            "backhaul window must be non-empty"
        );
        self.backhaul.push(fault);
        self
    }

    /// Adds a controller-link partition window (builder style). Panics on
    /// a zero-length window or one overlapping an existing partition of
    /// the same AP.
    pub fn with_partition(mut self, ap: usize, from: SimTime, until: SimTime) -> Self {
        Self::assert_window(
            "partition",
            self.partitions
                .iter()
                .filter(|p| p.ap == ap)
                .map(|p| (p.from, p.until)),
            from,
            until,
        );
        self.partitions.push(PartitionWindow { ap, from, until });
        self
    }

    /// Adds a controller crash/restart window (builder style). Panics on a
    /// zero-length window or one overlapping an existing controller
    /// outage — there is only one controller, so its windows must be
    /// disjoint.
    pub fn with_controller_crash(mut self, from: SimTime, until: SimTime) -> Self {
        Self::assert_window(
            "controller crash",
            self.controller_crashes.iter().map(|o| (o.from, o.until)),
            from,
            until,
        );
        self.controller_crashes
            .push(ControllerOutage { from, until });
        self
    }

    /// Adds a controller **failover** window (builder style): the primary
    /// crashes at `from` with a warm standby armed to take over, and the
    /// ex-primary wakes as a zombie at `until` (it does *not* resume the
    /// controller role — the standby holds the reign by then, and the
    /// zombie's stale-term frames must be fenced by the AP term guards).
    /// Panics on a zero-length window or one overlapping any existing
    /// controller window of either kind — there is only one controller
    /// process timeline.
    pub fn with_controller_failover(mut self, from: SimTime, until: SimTime) -> Self {
        Self::assert_window(
            "controller failover",
            self.controller_crashes
                .iter()
                .chain(self.controller_failovers.iter())
                .map(|o| (o.from, o.until)),
            from,
            until,
        );
        self.controller_failovers
            .push(ControllerOutage { from, until });
        self
    }

    /// Adds a journal replication lag window (builder style).
    pub fn with_journal_lag(mut self, from: SimTime, until: SimTime, extra: SimDuration) -> Self {
        assert!(from < until, "journal lag window must be non-empty");
        assert!(extra > SimDuration::ZERO, "journal lag must be > 0");
        self.journal_lag
            .push(JournalLagWindow { from, until, extra });
        self
    }

    /// Adds a rapid crash/reboot **flapping** burst for one AP (builder
    /// style): starting at `from`, the AP cycles with period `period`,
    /// spending the first `duty` fraction of each cycle down, until the
    /// cycle start reaches `until`. Each down-phase is an ordinary
    /// [`ApOutage`], so the usual overlap validation applies against any
    /// pre-existing outages of the same AP.
    pub fn with_ap_flapping(
        mut self,
        ap: usize,
        from: SimTime,
        until: SimTime,
        period: SimDuration,
        duty: f64,
    ) -> Self {
        assert!(from < until, "flapping window must be non-empty");
        assert!(period > SimDuration::ZERO, "flapping period must be > 0");
        assert!(
            (0.0..1.0).contains(&duty) && duty > 0.0,
            "flapping duty must be in (0, 1)"
        );
        let down = SimDuration::from_secs_f64(period.as_secs_f64() * duty);
        let mut t = from;
        while t < until {
            self = self.with_ap_outage(ap, t, t + down);
            t += period;
        }
        self
    }

    /// Adds a CSI drop window (builder style).
    pub fn with_csi_drops(mut self, from: SimTime, until: SimTime, drop_prob: f64) -> Self {
        assert!(from < until, "csi window must be non-empty");
        self.csi_drops.push(CsiDropWindow {
            from,
            until,
            drop_prob,
        });
        self
    }

    /// Adds a backhaul duplication window (builder style).
    pub fn with_duplication(mut self, from: SimTime, until: SimTime, dup_prob: f64) -> Self {
        assert!(from < until, "duplication window must be non-empty");
        self.duplication.push(DupWindow {
            from,
            until,
            dup_prob,
        });
        self
    }

    /// Adds a backhaul reordering window (builder style).
    pub fn with_reordering(
        mut self,
        from: SimTime,
        until: SimTime,
        reorder_prob: f64,
        window: SimDuration,
    ) -> Self {
        assert!(from < until, "reordering window must be non-empty");
        assert!(window > SimDuration::ZERO, "reorder hold-back must be > 0");
        self.reordering.push(ReorderWindow {
            from,
            until,
            reorder_prob,
            window,
        });
        self
    }

    /// Adds a seam-migration frame **loss** window (builder style): each
    /// migration frame sent across a shard seam while the window is open
    /// is independently dropped with probability `prob`.
    pub fn with_migration_loss(mut self, from: SimTime, until: SimTime, prob: f64) -> Self {
        assert!(from < until, "migration loss window must be non-empty");
        assert!(
            (0.0..=1.0).contains(&prob) && prob > 0.0,
            "migration loss probability must be in (0, 1]"
        );
        self.migration_loss
            .push(MigrationFaultWindow { from, until, prob });
        self
    }

    /// Adds a seam-migration frame **duplication** window (builder style):
    /// each migration frame sent across a shard seam while the window is
    /// open is independently delivered a second time with probability
    /// `prob` — the retry/idempotence machinery must absorb the copy.
    pub fn with_migration_dup(mut self, from: SimTime, until: SimTime, prob: f64) -> Self {
        assert!(from < until, "migration dup window must be non-empty");
        assert!(
            (0.0..=1.0).contains(&prob) && prob > 0.0,
            "migration dup probability must be in (0, 1]"
        );
        self.migration_dup
            .push(MigrationFaultWindow { from, until, prob });
        self
    }

    /// Whether AP `ap` is dead at `t`.
    pub fn ap_down(&self, ap: usize, t: SimTime) -> bool {
        self.ap_outages
            .iter()
            .any(|o| o.ap == ap && o.from <= t && t < o.until)
    }

    /// Whether AP `ap` is cut off from the controller at `t` (either
    /// explicitly partitioned or outright dead).
    pub fn partitioned(&self, ap: usize, t: SimTime) -> bool {
        self.ap_down(ap, t)
            || self
                .partitions
                .iter()
                .any(|p| p.ap == ap && p.from <= t && t < p.until)
    }

    /// Whether the central controller is dead at `t`.
    ///
    /// Only cold crash/restart windows count: during a *failover* window
    /// the standby may already have taken over mid-window, so controller
    /// liveness there is runtime state the simulator tracks itself, not a
    /// schedule-derivable fact.
    pub fn controller_down(&self, t: SimTime) -> bool {
        self.controller_crashes
            .iter()
            .any(|o| o.from <= t && t < o.until)
    }

    /// Extra one-way journal delivery delay at `t` (windows sum).
    pub fn journal_lag_at(&self, t: SimTime) -> SimDuration {
        let mut extra = SimDuration::ZERO;
        for w in &self.journal_lag {
            if w.from <= t && t < w.until {
                extra += w.extra;
            }
        }
        extra
    }

    /// The combined backhaul impairment at `t`. Loss, duplication, and
    /// reorder probabilities compose as independent events; latency and
    /// jitter add; the reorder hold-back takes the widest window.
    pub fn backhaul_at(&self, t: SimTime) -> BackhaulImpairment {
        let mut imp = BackhaulImpairment::default();
        let mut keep = 1.0f64;
        for f in &self.backhaul {
            if f.from <= t && t < f.until {
                keep *= 1.0 - f.extra_loss_prob.clamp(0.0, 1.0);
                imp.extra_latency += f.extra_latency;
                imp.extra_jitter_mean += f.extra_jitter_mean;
            }
        }
        imp.extra_loss_prob = 1.0 - keep;
        let mut no_dup = 1.0f64;
        for w in &self.duplication {
            if w.from <= t && t < w.until {
                no_dup *= 1.0 - w.dup_prob.clamp(0.0, 1.0);
            }
        }
        imp.dup_prob = 1.0 - no_dup;
        let mut no_reorder = 1.0f64;
        for w in &self.reordering {
            if w.from <= t && t < w.until {
                no_reorder *= 1.0 - w.reorder_prob.clamp(0.0, 1.0);
                imp.reorder_window = imp.reorder_window.max(w.window);
            }
        }
        imp.reorder_prob = 1.0 - no_reorder;
        imp
    }

    /// CSI-report drop probability at `t` (independent windows compose).
    pub fn csi_drop_prob(&self, t: SimTime) -> f64 {
        let mut keep = 1.0f64;
        for w in &self.csi_drops {
            if w.from <= t && t < w.until {
                keep *= 1.0 - w.drop_prob.clamp(0.0, 1.0);
            }
        }
        1.0 - keep
    }

    /// Seam-migration frame loss probability at `t` (independent windows
    /// compose). Zero when no window is open, so fault-free seams never
    /// consume randomness.
    pub fn migration_loss_prob(&self, t: SimTime) -> f64 {
        Self::migration_prob_at(&self.migration_loss, t)
    }

    /// Seam-migration frame duplication probability at `t` (independent
    /// windows compose).
    pub fn migration_dup_prob(&self, t: SimTime) -> f64 {
        Self::migration_prob_at(&self.migration_dup, t)
    }

    fn migration_prob_at(windows: &[MigrationFaultWindow], t: SimTime) -> f64 {
        let mut keep = 1.0f64;
        for w in windows {
            if w.from <= t && t < w.until {
                keep *= 1.0 - w.prob.clamp(0.0, 1.0);
            }
        }
        1.0 - keep
    }

    /// All crash/reboot edges in time order, for scheduling simulator
    /// events. Ties break crash-before-reboot, then by AP index with the
    /// controller ordered after every AP, so event priming is
    /// deterministic.
    pub fn edges(&self) -> Vec<(SimTime, FaultEdge)> {
        let mut edges: Vec<(SimTime, FaultEdge)> = Vec::new();
        for o in &self.ap_outages {
            edges.push((o.from, FaultEdge::Crash(o.ap)));
            edges.push((o.until, FaultEdge::Reboot(o.ap)));
        }
        for o in &self.controller_crashes {
            edges.push((o.from, FaultEdge::ControllerCrash));
            edges.push((o.until, FaultEdge::ControllerRecover));
        }
        for o in &self.controller_failovers {
            edges.push((o.from, FaultEdge::ControllerCrash));
            edges.push((o.until, FaultEdge::ZombieWake));
        }
        edges.sort_by_key(|&(t, e)| {
            (
                t,
                match e {
                    FaultEdge::Crash(ap) => (0, ap),
                    FaultEdge::ControllerCrash => (0, usize::MAX),
                    FaultEdge::Reboot(ap) => (1, ap),
                    FaultEdge::ControllerRecover => (1, usize::MAX),
                    FaultEdge::ZombieWake => (2, usize::MAX),
                },
            )
        });
        edges
    }

    /// Generates random AP outages with the given RNG: each AP
    /// independently crashes at `rate_per_s` (Poisson, approximated per
    /// candidate slot) over `[0, duration)`, staying down for a uniform
    /// draw from `outage_len`. Callers should pass a forked stream
    /// (`rng.fork("faults")`) so schedule generation never disturbs other
    /// draws.
    pub fn random_outages(
        rng: &mut SimRng,
        n_aps: usize,
        duration: SimDuration,
        rate_per_s: f64,
        outage_len: std::ops::Range<SimDuration>,
    ) -> Self {
        let mut sched = FaultSchedule::new();
        if rate_per_s <= 0.0 {
            return sched;
        }
        for ap in 0..n_aps {
            // Sample inter-crash gaps from Exp(rate); walk the timeline.
            let mut t = 0.0f64;
            let end = duration.as_secs_f64();
            loop {
                t += rng.exponential(1.0 / rate_per_s);
                if t >= end {
                    break;
                }
                let len = rng.range(outage_len.start.as_secs_f64()..outage_len.end.as_secs_f64());
                let from = SimTime::ZERO + SimDuration::from_secs_f64(t);
                let until = from + SimDuration::from_secs_f64(len);
                sched.ap_outages.push(ApOutage { ap, from, until });
                // Next crash can only happen after the reboot.
                t += len;
            }
        }
        sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn empty_schedule_is_healthy() {
        let s = FaultSchedule::new();
        assert!(s.is_empty());
        assert!(!s.ap_down(0, t(100)));
        assert!(!s.partitioned(3, t(100)));
        assert!(s.backhaul_at(t(100)).is_noop());
        assert_eq!(s.csi_drop_prob(t(100)), 0.0);
        assert!(s.edges().is_empty());
    }

    #[test]
    fn outage_window_half_open() {
        let s = FaultSchedule::new().with_ap_outage(2, t(100), t(300));
        assert!(!s.ap_down(2, t(99)));
        assert!(s.ap_down(2, t(100)));
        assert!(s.ap_down(2, t(299)));
        assert!(!s.ap_down(2, t(300)));
        assert!(!s.ap_down(1, t(150)));
        // A dead AP is also partitioned.
        assert!(s.partitioned(2, t(150)));
    }

    #[test]
    fn edges_ordered_crash_before_reboot() {
        let s = FaultSchedule::new()
            .with_ap_outage(1, t(200), t(400))
            .with_ap_outage(0, t(100), t(200));
        let e = s.edges();
        assert_eq!(
            e,
            vec![
                (t(100), FaultEdge::Crash(0)),
                (t(200), FaultEdge::Crash(1)),
                (t(200), FaultEdge::Reboot(0)),
                (t(400), FaultEdge::Reboot(1)),
            ]
        );
    }

    #[test]
    fn backhaul_windows_compose() {
        let s = FaultSchedule::new()
            .with_backhaul_fault(BackhaulFault {
                from: t(0),
                until: t(1000),
                extra_loss_prob: 0.5,
                extra_latency: SimDuration::from_millis(1),
                extra_jitter_mean: SimDuration::from_micros(200),
            })
            .with_backhaul_fault(BackhaulFault {
                from: t(500),
                until: t(1500),
                extra_loss_prob: 0.5,
                extra_latency: SimDuration::from_millis(2),
                extra_jitter_mean: SimDuration::ZERO,
            });
        let early = s.backhaul_at(t(100));
        assert!((early.extra_loss_prob - 0.5).abs() < 1e-12);
        assert_eq!(early.extra_latency, SimDuration::from_millis(1));
        let overlap = s.backhaul_at(t(700));
        assert!((overlap.extra_loss_prob - 0.75).abs() < 1e-12);
        assert_eq!(overlap.extra_latency, SimDuration::from_millis(3));
        assert!(s.backhaul_at(t(2000)).is_noop());
    }

    #[test]
    fn csi_drop_composes() {
        let s = FaultSchedule::new()
            .with_csi_drops(t(0), t(100), 0.2)
            .with_csi_drops(t(50), t(100), 0.5);
        assert!((s.csi_drop_prob(t(10)) - 0.2).abs() < 1e-12);
        assert!((s.csi_drop_prob(t(60)) - 0.6).abs() < 1e-12);
        assert_eq!(s.csi_drop_prob(t(100)), 0.0);
    }

    #[test]
    fn dup_and_reorder_windows_compose() {
        let s = FaultSchedule::new()
            .with_duplication(t(0), t(1000), 0.5)
            .with_duplication(t(500), t(1500), 0.5)
            .with_reordering(t(0), t(1000), 0.2, SimDuration::from_millis(1))
            .with_reordering(t(0), t(2000), 0.2, SimDuration::from_millis(3));
        assert!(!s.is_empty());
        let early = s.backhaul_at(t(100));
        assert!((early.dup_prob - 0.5).abs() < 1e-12);
        assert!((early.reorder_prob - 0.36).abs() < 1e-12);
        assert_eq!(early.reorder_window, SimDuration::from_millis(3));
        assert!(!early.is_noop());
        let overlap = s.backhaul_at(t(700));
        assert!((overlap.dup_prob - 0.75).abs() < 1e-12);
        let late = s.backhaul_at(t(1700));
        assert_eq!(late.dup_prob, 0.0);
        assert!((late.reorder_prob - 0.2).abs() < 1e-12);
        assert!(s.backhaul_at(t(3000)).is_noop());
    }

    #[test]
    fn dup_only_impairment_is_not_noop() {
        let s = FaultSchedule::new().with_duplication(t(0), t(100), 0.1);
        assert!(!s.backhaul_at(t(50)).is_noop());
        // Loss / latency / jitter stay at their healthy values.
        let imp = s.backhaul_at(t(50));
        assert_eq!(imp.extra_loss_prob, 0.0);
        assert_eq!(imp.extra_latency, SimDuration::ZERO);
        assert_eq!(imp.extra_jitter_mean, SimDuration::ZERO);
    }

    #[test]
    fn partition_does_not_imply_down() {
        let s = FaultSchedule::new().with_partition(4, t(10), t(20));
        assert!(s.partitioned(4, t(15)));
        assert!(!s.ap_down(4, t(15)));
    }

    #[test]
    fn random_outages_deterministic_per_seed() {
        let dur = SimDuration::from_secs(30);
        let len = SimDuration::from_millis(500)..SimDuration::from_secs(2);
        let a = FaultSchedule::random_outages(
            &mut SimRng::new(7).fork("faults"),
            4,
            dur,
            0.2,
            len.clone(),
        );
        let b = FaultSchedule::random_outages(
            &mut SimRng::new(7).fork("faults"),
            4,
            dur,
            0.2,
            len.clone(),
        );
        assert_eq!(a, b);
        let c = FaultSchedule::random_outages(&mut SimRng::new(8).fork("faults"), 4, dur, 0.2, len);
        assert_ne!(a, c);
        // All windows well-formed and inside a sane horizon.
        for o in &a.ap_outages {
            assert!(o.from < o.until);
            assert!(o.ap < 4);
        }
    }

    #[test]
    fn controller_crash_window_half_open() {
        let s = FaultSchedule::new().with_controller_crash(t(100), t(300));
        assert!(!s.is_empty());
        assert!(!s.controller_down(t(99)));
        assert!(s.controller_down(t(100)));
        assert!(s.controller_down(t(299)));
        assert!(!s.controller_down(t(300)));
        // A controller crash does not take any AP down or partition it.
        assert!(!s.ap_down(0, t(150)));
        assert!(!s.partitioned(0, t(150)));
    }

    #[test]
    fn controller_edges_interleave_after_ap_edges() {
        let s = FaultSchedule::new()
            .with_ap_outage(1, t(100), t(200))
            .with_controller_crash(t(100), t(400));
        let e = s.edges();
        assert_eq!(
            e,
            vec![
                (t(100), FaultEdge::Crash(1)),
                (t(100), FaultEdge::ControllerCrash),
                (t(200), FaultEdge::Reboot(1)),
                (t(400), FaultEdge::ControllerRecover),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "must be non-empty")]
    fn zero_length_controller_crash_rejected() {
        let _ = FaultSchedule::new().with_controller_crash(t(100), t(100));
    }

    #[test]
    #[should_panic(expected = "overlaps existing")]
    fn overlapping_controller_crashes_rejected() {
        let _ = FaultSchedule::new()
            .with_controller_crash(t(100), t(300))
            .with_controller_crash(t(299), t(500));
    }

    #[test]
    #[should_panic(expected = "overlaps existing")]
    fn overlapping_outages_same_ap_rejected() {
        let _ = FaultSchedule::new()
            .with_ap_outage(2, t(100), t(300))
            .with_ap_outage(2, t(200), t(400));
    }

    #[test]
    #[should_panic(expected = "overlaps existing")]
    fn overlapping_partitions_same_ap_rejected() {
        let _ = FaultSchedule::new()
            .with_partition(1, t(0), t(50))
            .with_partition(1, t(49), t(60));
    }

    #[test]
    fn adjacent_and_cross_target_windows_are_fine() {
        // Half-open windows: [100,200) then [200,300) on the same AP do
        // not overlap; identical windows on *different* APs are fine, and
        // an outage may overlap a partition (different kinds).
        let s = FaultSchedule::new()
            .with_ap_outage(0, t(100), t(200))
            .with_ap_outage(0, t(200), t(300))
            .with_ap_outage(1, t(100), t(200))
            .with_partition(0, t(150), t(250))
            .with_controller_crash(t(100), t(200))
            .with_controller_crash(t(200), t(300));
        assert!(s.ap_down(0, t(250)));
        assert!(s.controller_down(t(250)));
    }

    #[test]
    fn failover_window_edges_and_liveness() {
        let s = FaultSchedule::new().with_controller_failover(t(100), t(400));
        assert!(!s.is_empty());
        // The schedule does NOT claim the controller is down: the standby
        // may take over mid-window, so liveness is runtime state.
        assert!(!s.controller_down(t(200)));
        assert_eq!(
            s.edges(),
            vec![
                (t(100), FaultEdge::ControllerCrash),
                (t(400), FaultEdge::ZombieWake),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "overlaps existing")]
    fn failover_overlapping_cold_crash_rejected() {
        let _ = FaultSchedule::new()
            .with_controller_crash(t(100), t(300))
            .with_controller_failover(t(200), t(500));
    }

    #[test]
    fn journal_lag_windows_sum() {
        let s = FaultSchedule::new()
            .with_journal_lag(t(0), t(100), SimDuration::from_millis(5))
            .with_journal_lag(t(50), t(200), SimDuration::from_millis(20));
        assert!(!s.is_empty());
        assert_eq!(s.journal_lag_at(t(10)), SimDuration::from_millis(5));
        assert_eq!(s.journal_lag_at(t(60)), SimDuration::from_millis(25));
        assert_eq!(s.journal_lag_at(t(150)), SimDuration::from_millis(20));
        assert_eq!(s.journal_lag_at(t(500)), SimDuration::ZERO);
    }

    #[test]
    fn flapping_expands_to_disjoint_outages() {
        // 1 s of flapping at 200 ms period, 25% duty: 5 cycles, each down
        // for the first 50 ms.
        let s = FaultSchedule::new().with_ap_flapping(
            3,
            t(1000),
            t(2000),
            SimDuration::from_millis(200),
            0.25,
        );
        assert_eq!(s.ap_outages.len(), 5);
        assert!(s.ap_down(3, t(1000)));
        assert!(s.ap_down(3, t(1049)));
        assert!(!s.ap_down(3, t(1050)));
        assert!(s.ap_down(3, t(1200)));
        assert!(!s.ap_down(3, t(1999)));
        // 10 crash/reboot edges, interleaved in order.
        assert_eq!(s.edges().len(), 10);
    }

    #[test]
    #[should_panic(expected = "duty must be in")]
    fn flapping_full_duty_rejected() {
        let _ = FaultSchedule::new().with_ap_flapping(
            0,
            t(0),
            t(1000),
            SimDuration::from_millis(100),
            1.0,
        );
    }

    #[test]
    fn migration_fault_windows_compose_and_stay_seam_scoped() {
        let s = FaultSchedule::new()
            .with_migration_loss(t(0), t(1000), 0.5)
            .with_migration_loss(t(500), t(1500), 0.5)
            .with_migration_dup(t(200), t(800), 0.1);
        assert!(!s.is_empty());
        assert_eq!(s.window_count(), 3);
        // Half-open windows, independent composition in the overlap.
        assert!((s.migration_loss_prob(t(100)) - 0.5).abs() < 1e-12);
        assert!((s.migration_loss_prob(t(700)) - 0.75).abs() < 1e-12);
        assert_eq!(s.migration_loss_prob(t(1500)), 0.0);
        assert!((s.migration_dup_prob(t(500)) - 0.1).abs() < 1e-12);
        assert_eq!(s.migration_dup_prob(t(900)), 0.0);
        // Seam windows never leak into the AP/controller fault queries:
        // the backhaul, AP, and controller timelines all stay healthy.
        assert!(s.backhaul_at(t(700)).is_noop());
        assert!(!s.ap_down(0, t(700)));
        assert!(!s.controller_down(t(700)));
        assert!(s.edges().is_empty());
    }

    #[test]
    #[should_panic(expected = "must be non-empty")]
    fn zero_length_migration_loss_rejected() {
        let _ = FaultSchedule::new().with_migration_loss(t(100), t(100), 0.5);
    }

    #[test]
    #[should_panic(expected = "probability must be in")]
    fn out_of_range_migration_dup_rejected() {
        let _ = FaultSchedule::new().with_migration_dup(t(0), t(100), 1.5);
    }

    #[test]
    fn random_outages_zero_rate_is_empty() {
        let mut rng = SimRng::new(1);
        let s = FaultSchedule::random_outages(
            &mut rng,
            8,
            SimDuration::from_secs(10),
            0.0,
            SimDuration::from_millis(100)..SimDuration::from_millis(200),
        );
        assert!(s.is_empty());
    }
}
