//! Statistics helpers shared by every layer of the reproduction.
//!
//! The paper reports means, standard deviations, medians, quantiles, CDFs,
//! EWMA-smoothed rate estimates, and windowed timeseries — this module
//! provides those primitives once so every experiment harness computes them
//! identically.

use crate::time::{SimDuration, SimTime};

/// Mean of a slice; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; `0.0` for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Quantile via linear interpolation on the sorted copy of `xs`.
/// `q` is clamped to `[0, 1]`; returns `0.0` for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    quantile_sorted(&sorted, q)
}

/// Quantile of an already-sorted slice (ascending).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Empirical CDF: returns `(value, cumulative_fraction)` pairs over the
/// sorted samples, suitable for plotting the paper's CDF figures
/// (Figs 16, 24).
pub fn ecdf(xs: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in ecdf input"));
    let n = sorted.len();
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n as f64))
        .collect()
}

/// Exponentially weighted moving average.
///
/// `alpha` is the weight of each new observation (`0 < alpha <= 1`), the
/// same convention Minstrel-style rate controllers use.
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with the given new-sample weight.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha out of range: {alpha}");
        Ewma { alpha, value: None }
    }

    /// Feeds an observation and returns the updated average.
    pub fn update(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        };
        self.value = Some(v);
        v
    }

    /// Current average, if any observation has been fed.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Current average or the provided default.
    pub fn value_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// Discards all state.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// A sliding time window of `(SimTime, f64)` samples.
///
/// This is the structure behind the WGTT AP-selection window: the controller
/// keeps the last `W` (default 10 ms) of ESNR readings per client–AP link
/// and selects on the window median (§3.1.1 of the paper).
#[derive(Debug, Clone)]
pub struct TimeWindow {
    window: SimDuration,
    samples: std::collections::VecDeque<(SimTime, f64)>,
}

impl TimeWindow {
    /// Creates a window of the given duration.
    pub fn new(window: SimDuration) -> Self {
        TimeWindow {
            window,
            samples: std::collections::VecDeque::new(),
        }
    }

    /// The configured window length.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Inserts a sample taken at `t` and evicts anything older than
    /// `t - window`. Samples must arrive in non-decreasing time order.
    pub fn push(&mut self, t: SimTime, value: f64) {
        debug_assert!(
            self.samples.back().map_or(true, |&(last, _)| last <= t),
            "TimeWindow samples must be time-ordered"
        );
        self.samples.push_back((t, value));
        self.evict(t);
    }

    /// Evicts samples older than `now - window` without inserting.
    pub fn evict(&mut self, now: SimTime) {
        let cutoff = now - self.window;
        while let Some(&(t, _)) = self.samples.front() {
            if t < cutoff {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    /// Number of samples currently inside the window.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Time of the newest sample, if any.
    pub fn newest_time(&self) -> Option<SimTime> {
        self.samples.back().map(|&(t, _)| t)
    }

    /// Median of the values currently inside the window.
    ///
    /// Uses the paper's convention: sort values ascending and take element
    /// `floor(L/2)` — for even L this is the upper median, matching
    /// `e_{⌊L/2⌋}` with 0-based indexing in §3.1.1.
    pub fn median(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut vals: Vec<f64> = self.samples.iter().map(|&(_, v)| v).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("NaN in window"));
        Some(vals[vals.len() / 2])
    }

    /// Mean of the values currently inside the window (used by the
    /// estimator ablation in the window-size experiment).
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().map(|&(_, v)| v).sum::<f64>() / self.samples.len() as f64)
    }

    /// Latest value inside the window.
    pub fn latest(&self) -> Option<f64> {
        self.samples.back().map(|&(_, v)| v)
    }

    /// Iterates over `(time, value)` samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.samples.iter().copied()
    }

    /// Removes all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
    }
}

/// Accumulates a timeseries binned into fixed-width intervals, e.g. the
/// per-100 ms throughput curves of Figs 14, 15 and 22.
#[derive(Debug, Clone)]
pub struct BinnedSeries {
    bin: SimDuration,
    /// Sum accumulated per bin, indexed by bin number.
    bins: Vec<f64>,
}

impl BinnedSeries {
    /// Creates a series with the given bin width.
    pub fn new(bin: SimDuration) -> Self {
        assert!(bin > SimDuration::ZERO);
        BinnedSeries {
            bin,
            bins: Vec::new(),
        }
    }

    /// Adds `amount` to the bin containing time `t`.
    pub fn add(&mut self, t: SimTime, amount: f64) {
        let idx = (t.as_nanos() / self.bin.as_nanos()) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0.0);
        }
        self.bins[idx] += amount;
    }

    /// Bin width.
    pub fn bin_width(&self) -> SimDuration {
        self.bin
    }

    /// Returns `(bin_start_time, sum)` pairs for every bin.
    pub fn points(&self) -> Vec<(SimTime, f64)> {
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &v)| (SimTime::from_nanos(i as u64 * self.bin.as_nanos()), v))
            .collect()
    }

    /// Returns per-bin *rates*: sum divided by bin width in seconds.
    /// Adding bytes and calling this yields bytes/s per bin.
    pub fn rates(&self) -> Vec<(SimTime, f64)> {
        let secs = self.bin.as_secs_f64();
        self.points()
            .into_iter()
            .map(|(t, v)| (t, v / secs))
            .collect()
    }

    /// Sum over all bins.
    pub fn total(&self) -> f64 {
        self.bins.iter().sum()
    }

    /// Number of bins currently allocated.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True if no data has been added.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }
}

/// Streaming mean/std/min/max accumulator (Welford's algorithm) for metrics
/// too large to buffer.
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Feeds an observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean; `0.0` if empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation; `0.0` for fewer than two samples.
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Smallest observation; `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation; `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((std_dev(&xs) - 1.118033988).abs() < 1e-6);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
    }

    #[test]
    fn quantiles() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
        assert_eq!(median(&[1.0, 2.0, 10.0]), 2.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
        // Out-of-range q clamps.
        assert_eq!(quantile(&xs, 2.0), 4.0);
        assert_eq!(quantile(&xs, -1.0), 1.0);
    }

    #[test]
    fn ecdf_shape() {
        let points = ecdf(&[3.0, 1.0, 2.0]);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0], (1.0, 1.0 / 3.0));
        assert_eq!(points[2], (3.0, 1.0));
        // Monotone in both coordinates.
        for w in points.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn ewma_behaviour() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        assert_eq!(e.update(10.0), 10.0);
        assert_eq!(e.update(0.0), 5.0);
        assert_eq!(e.update(5.0), 5.0);
        e.reset();
        assert_eq!(e.value_or(-1.0), -1.0);
    }

    #[test]
    #[should_panic]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn time_window_eviction() {
        let mut w = TimeWindow::new(SimDuration::from_millis(10));
        w.push(SimTime::from_millis(0), 1.0);
        w.push(SimTime::from_millis(5), 2.0);
        w.push(SimTime::from_millis(12), 3.0);
        // Sample at t=0 is older than 12-10=2 ms and must be gone.
        assert_eq!(w.len(), 2);
        assert_eq!(w.latest(), Some(3.0));
        w.evict(SimTime::from_millis(30));
        assert!(w.is_empty());
        assert_eq!(w.median(), None);
    }

    #[test]
    fn time_window_early_run_underflow_keeps_everything() {
        // Before one full window has elapsed (t < window), the cutoff
        // `t - window` saturates to zero — nothing may be evicted, even
        // samples at t = 0.
        let mut w = TimeWindow::new(SimDuration::from_millis(10));
        w.push(SimTime::from_millis(0), 1.0);
        w.push(SimTime::from_millis(3), 2.0);
        w.push(SimTime::from_millis(9), 3.0);
        assert_eq!(w.len(), 3);
        // Explicit evict at t < window is likewise a no-op.
        w.evict(SimTime::from_millis(9));
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn time_window_exact_cutoff_boundary_is_retained() {
        // A sample exactly `window` old (t == now - window) sits on the
        // boundary and must be retained — eviction is strict (`t < cutoff`).
        let mut w = TimeWindow::new(SimDuration::from_millis(10));
        w.push(SimTime::from_millis(5), 1.0);
        w.push(SimTime::from_millis(15), 2.0);
        assert_eq!(w.len(), 2, "t == now - window must survive");
        // One nanosecond later it is strictly older than the window.
        w.evict(SimTime::from_millis(15) + SimDuration::from_nanos(1));
        assert_eq!(w.len(), 1);
        assert_eq!(w.latest(), Some(2.0));
    }

    #[test]
    fn time_window_empty_statistics() {
        // A never-filled and a fully-evicted window agree: no median, no
        // mean, no latest, no newest_time.
        let mut w = TimeWindow::new(SimDuration::from_millis(10));
        assert_eq!(w.median(), None);
        assert_eq!(w.mean(), None);
        assert_eq!(w.latest(), None);
        assert_eq!(w.newest_time(), None);
        w.push(SimTime::from_millis(1), 4.0);
        w.evict(SimTime::from_secs(1));
        assert!(w.is_empty());
        assert_eq!(w.median(), None);
        assert_eq!(w.mean(), None);
        assert_eq!(w.latest(), None);
    }

    #[test]
    fn time_window_median_convention() {
        let mut w = TimeWindow::new(SimDuration::from_secs(1));
        for (i, v) in [5.0, 1.0, 9.0, 3.0].iter().enumerate() {
            w.push(SimTime::from_millis(i as u64), *v);
        }
        // Sorted: [1,3,5,9]; element floor(4/2)=2 -> 5.0 (upper median).
        assert_eq!(w.median(), Some(5.0));
        assert_eq!(w.mean(), Some(4.5));
    }

    #[test]
    fn binned_series_rates() {
        let mut s = BinnedSeries::new(SimDuration::from_millis(100));
        s.add(SimTime::from_millis(10), 100.0);
        s.add(SimTime::from_millis(90), 100.0);
        s.add(SimTime::from_millis(150), 50.0);
        let pts = s.points();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].1, 200.0);
        assert_eq!(pts[1].1, 50.0);
        let rates = s.rates();
        assert!((rates[0].1 - 2000.0).abs() < 1e-9);
        assert_eq!(s.total(), 250.0);
    }

    #[test]
    fn accumulator_matches_batch() {
        let xs = [3.0, 7.0, 7.0, 19.0];
        let mut acc = Accumulator::new();
        for &x in &xs {
            acc.add(x);
        }
        assert_eq!(acc.count(), 4);
        assert!((acc.mean() - mean(&xs)).abs() < 1e-12);
        assert!((acc.std_dev() - std_dev(&xs)).abs() < 1e-12);
        assert_eq!(acc.min(), Some(3.0));
        assert_eq!(acc.max(), Some(19.0));
        let empty = Accumulator::new();
        assert_eq!(empty.min(), None);
        assert_eq!(empty.mean(), 0.0);
    }
}
