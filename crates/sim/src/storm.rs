//! Composite-fault **storm** schedules.
//!
//! A storm is one randomized [`FaultSchedule`] per shard that composes
//! every fault family at once — AP flapping bursts, backhaul loss/latency,
//! duplication, reordering, controller failover, and seam-migration
//! loss/dup — the adversarial background against which the migration
//! protocol and the lockstep contract must both hold. Generation is fully
//! deterministic per seed (all draws come from the caller's [`SimRng`]),
//! so a failing storm is a reproducible artifact, not an anecdote.
//!
//! When a storm *does* break an invariant, [`shrink`] minimizes it:
//! greedy window removal re-runs the caller's failure predicate with one
//! window deleted at a time and keeps every deletion that still fails,
//! iterating to a fixpoint. The result is 1-minimal — removing any
//! remaining window makes the failure disappear — which turns a
//! forty-window storm into the two or three windows that actually matter.

use crate::fault::FaultSchedule;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Intensity knobs for one storm. Every window count is **per shard**;
/// probabilities are per-frame within a window. The defaults describe a
/// storm that is survivable by design — heavy enough to exercise every
/// fault path, light enough that retries and failover can still win.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// Shards in the corridor (one schedule is generated per shard).
    pub shards: usize,
    /// APs per shard (flap bursts pick targets below this).
    pub n_aps: usize,
    /// Horizon windows are drawn inside.
    pub duration: SimDuration,
    /// AP flapping bursts (each on a distinct AP).
    pub flap_bursts: usize,
    /// Crash/reboot cycle period within a flap burst.
    pub flap_period: SimDuration,
    /// Fraction of each flap cycle spent down, in (0, 1).
    pub flap_duty: f64,
    /// Backhaul impairment windows.
    pub backhaul_windows: usize,
    /// Extra backhaul loss per impairment window.
    pub backhaul_loss: f64,
    /// Extra fixed backhaul latency per impairment window.
    pub backhaul_latency: SimDuration,
    /// Backhaul duplication windows.
    pub dup_windows: usize,
    /// Per-message duplication probability.
    pub dup_prob: f64,
    /// Backhaul reordering windows.
    pub reorder_windows: usize,
    /// Per-message reorder probability.
    pub reorder_prob: f64,
    /// Maximum reorder hold-back.
    pub reorder_hold: SimDuration,
    /// Controller failover windows (primary crash + standby takeover).
    pub failovers: usize,
    /// Length of each failover window.
    pub failover_len: SimDuration,
    /// Seam-migration loss windows.
    pub migration_loss_windows: usize,
    /// Per-frame seam loss probability.
    pub migration_loss_prob: f64,
    /// Seam-migration duplication windows.
    pub migration_dup_windows: usize,
    /// Per-frame seam duplication probability.
    pub migration_dup_prob: f64,
    /// Length range for every probabilistic window family.
    pub window_len: std::ops::Range<SimDuration>,
}

impl Default for StormConfig {
    fn default() -> Self {
        Self {
            shards: 2,
            n_aps: 4,
            duration: SimDuration::from_secs(10),
            flap_bursts: 1,
            flap_period: SimDuration::from_millis(400),
            flap_duty: 0.25,
            backhaul_windows: 2,
            backhaul_loss: 0.2,
            backhaul_latency: SimDuration::from_millis(2),
            dup_windows: 1,
            dup_prob: 0.2,
            reorder_windows: 1,
            reorder_prob: 0.2,
            reorder_hold: SimDuration::from_millis(3),
            failovers: 1,
            failover_len: SimDuration::from_millis(500),
            migration_loss_windows: 1,
            migration_loss_prob: 0.3,
            migration_dup_windows: 1,
            migration_dup_prob: 0.3,
            window_len: SimDuration::from_millis(500)..SimDuration::from_secs(2),
        }
    }
}

/// Draws a `[from, until)` window of a length from `len` placed uniformly
/// inside `[0, horizon)`, clamping the length to the horizon.
fn rand_window(
    rng: &mut SimRng,
    horizon: SimDuration,
    len: &std::ops::Range<SimDuration>,
) -> (SimTime, SimTime) {
    let horizon_s = horizon.as_secs_f64();
    let len_s = rng
        .range(len.start.as_secs_f64()..len.end.as_secs_f64())
        .min(horizon_s * 0.9);
    let start_s = rng.range(0.0..(horizon_s - len_s));
    let from = SimTime::ZERO + SimDuration::from_secs_f64(start_s);
    (from, from + SimDuration::from_secs_f64(len_s))
}

/// Generates one composite-fault schedule per shard. All randomness comes
/// from `rng`; callers fork a dedicated stream (`rng.fork("storm")`) so
/// storm generation never perturbs channel or traffic draws.
pub fn random_storm(cfg: &StormConfig, rng: &mut SimRng) -> Vec<FaultSchedule> {
    assert!(cfg.shards >= 1, "storm needs at least one shard");
    assert!(
        cfg.duration > SimDuration::ZERO,
        "storm horizon must be non-empty"
    );
    let mut storms = Vec::with_capacity(cfg.shards);
    for shard in 0..cfg.shards {
        let mut rng = rng.fork_indexed("storm-shard", shard as u64);
        let mut s = FaultSchedule::new();
        // AP flapping bursts, each on a distinct AP so the per-AP outage
        // overlap validation can never trip.
        let mut aps: Vec<usize> = (0..cfg.n_aps).collect();
        rng.shuffle(&mut aps);
        for &ap in aps.iter().take(cfg.flap_bursts) {
            let (from, until) = rand_window(&mut rng, cfg.duration, &cfg.window_len);
            s = s.with_ap_flapping(ap, from, until, cfg.flap_period, cfg.flap_duty);
        }
        for _ in 0..cfg.backhaul_windows {
            let (from, until) = rand_window(&mut rng, cfg.duration, &cfg.window_len);
            s = s.with_backhaul_fault(crate::fault::BackhaulFault {
                from,
                until,
                extra_loss_prob: cfg.backhaul_loss,
                extra_latency: cfg.backhaul_latency,
                extra_jitter_mean: SimDuration::ZERO,
            });
        }
        for _ in 0..cfg.dup_windows {
            let (from, until) = rand_window(&mut rng, cfg.duration, &cfg.window_len);
            s = s.with_duplication(from, until, cfg.dup_prob);
        }
        for _ in 0..cfg.reorder_windows {
            let (from, until) = rand_window(&mut rng, cfg.duration, &cfg.window_len);
            s = s.with_reordering(from, until, cfg.reorder_prob, cfg.reorder_hold);
        }
        // Failover windows share one controller timeline, so they are
        // placed by walking a cursor forward — guaranteed disjoint.
        let mut cursor = SimTime::ZERO;
        for _ in 0..cfg.failovers {
            let slack = cfg
                .duration
                .as_secs_f64()
                .min((SimTime::ZERO + cfg.duration - cursor).as_secs_f64())
                - cfg.failover_len.as_secs_f64();
            if slack <= 0.0 {
                break;
            }
            let from = cursor + SimDuration::from_secs_f64(rng.range(0.0..slack));
            let until = from + cfg.failover_len;
            s = s.with_controller_failover(from, until);
            cursor = until;
        }
        for _ in 0..cfg.migration_loss_windows {
            let (from, until) = rand_window(&mut rng, cfg.duration, &cfg.window_len);
            s = s.with_migration_loss(from, until, cfg.migration_loss_prob);
        }
        for _ in 0..cfg.migration_dup_windows {
            let (from, until) = rand_window(&mut rng, cfg.duration, &cfg.window_len);
            s = s.with_migration_dup(from, until, cfg.migration_dup_prob);
        }
        storms.push(s);
    }
    storms
}

/// Number of addressable window families in a [`FaultSchedule`].
const FAMILIES: usize = 11;

fn family_len(s: &FaultSchedule, fam: usize) -> usize {
    match fam {
        0 => s.ap_outages.len(),
        1 => s.backhaul.len(),
        2 => s.partitions.len(),
        3 => s.controller_crashes.len(),
        4 => s.controller_failovers.len(),
        5 => s.journal_lag.len(),
        6 => s.csi_drops.len(),
        7 => s.duplication.len(),
        8 => s.reordering.len(),
        9 => s.migration_loss.len(),
        10 => s.migration_dup.len(),
        _ => unreachable!("family index out of range"),
    }
}

fn remove_window(s: &mut FaultSchedule, fam: usize, i: usize) {
    match fam {
        0 => drop(s.ap_outages.remove(i)),
        1 => drop(s.backhaul.remove(i)),
        2 => drop(s.partitions.remove(i)),
        3 => drop(s.controller_crashes.remove(i)),
        4 => drop(s.controller_failovers.remove(i)),
        5 => drop(s.journal_lag.remove(i)),
        6 => drop(s.csi_drops.remove(i)),
        7 => drop(s.duplication.remove(i)),
        8 => drop(s.reordering.remove(i)),
        9 => drop(s.migration_loss.remove(i)),
        10 => drop(s.migration_dup.remove(i)),
        _ => unreachable!("family index out of range"),
    }
}

fn total_windows(schedules: &[FaultSchedule]) -> usize {
    let counted: usize = schedules.iter().map(|s| s.window_count()).sum();
    let addressed: usize = schedules
        .iter()
        .map(|s| (0..FAMILIES).map(|f| family_len(s, f)).sum::<usize>())
        .sum();
    // A window family added to FaultSchedule but not to the shrinker's
    // address space would silently survive every shrink — fail loudly.
    assert_eq!(
        counted, addressed,
        "storm shrinker is missing a fault family"
    );
    counted
}

/// Minimizes a failing storm by greedy window removal: repeatedly deletes
/// one window, keeps the deletion whenever `fails` still returns `true`,
/// and stops at a fixpoint. The result is 1-minimal: removing any single
/// remaining window no longer reproduces the failure.
///
/// `fails` must return `true` for the input storm (asserted), and should
/// be deterministic — it is typically "run the scenario under these
/// schedules and check the invariant that broke".
pub fn shrink<F>(mut schedules: Vec<FaultSchedule>, mut fails: F) -> Vec<FaultSchedule>
where
    F: FnMut(&[FaultSchedule]) -> bool,
{
    assert!(
        fails(&schedules),
        "shrink needs a failing storm to start from"
    );
    loop {
        let mut reduced = false;
        'scan: for shard in 0..schedules.len() {
            for fam in 0..FAMILIES {
                // Walk backwards so a removal never shifts untried indices.
                for i in (0..family_len(&schedules[shard], fam)).rev() {
                    let mut candidate = schedules.clone();
                    remove_window(&mut candidate[shard], fam, i);
                    if fails(&candidate) {
                        schedules = candidate;
                        reduced = true;
                        break 'scan;
                    }
                }
            }
        }
        if !reduced {
            let _ = total_windows(&schedules);
            return schedules;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_generation_is_deterministic_per_seed() {
        let cfg = StormConfig::default();
        let a = random_storm(&cfg, &mut SimRng::new(9).fork("storm"));
        let b = random_storm(&cfg, &mut SimRng::new(9).fork("storm"));
        assert_eq!(a, b);
        let c = random_storm(&cfg, &mut SimRng::new(10).fork("storm"));
        assert_ne!(a, c);
        assert_eq!(a.len(), cfg.shards);
        // Every family the config asks for is present in every shard.
        for s in &a {
            assert!(!s.ap_outages.is_empty(), "no flap windows");
            assert_eq!(s.backhaul.len(), cfg.backhaul_windows);
            assert_eq!(s.duplication.len(), cfg.dup_windows);
            assert_eq!(s.reordering.len(), cfg.reorder_windows);
            assert_eq!(s.controller_failovers.len(), cfg.failovers);
            assert_eq!(s.migration_loss.len(), cfg.migration_loss_windows);
            assert_eq!(s.migration_dup.len(), cfg.migration_dup_windows);
        }
    }

    #[test]
    fn storm_shards_draw_independent_schedules() {
        let cfg = StormConfig {
            shards: 3,
            ..StormConfig::default()
        };
        let storm = random_storm(&cfg, &mut SimRng::new(4).fork("storm"));
        assert_ne!(storm[0], storm[1]);
        assert_ne!(storm[1], storm[2]);
    }

    #[test]
    fn shrink_strips_every_irrelevant_window() {
        let cfg = StormConfig::default();
        let storm = random_storm(&cfg, &mut SimRng::new(21).fork("storm"));
        let before: usize = storm.iter().map(|s| s.window_count()).sum();
        assert!(before > 2);
        // Synthetic predicate: the "violation" needs a migration-loss
        // window in shard 0 AND a duplication window in shard 1 — every
        // other window is noise the shrinker must delete.
        let fails = |ss: &[FaultSchedule]| {
            !ss[0].migration_loss.is_empty() && !ss[1].duplication.is_empty()
        };
        let min = shrink(storm, fails);
        assert_eq!(
            min.iter().map(|s| s.window_count()).sum::<usize>(),
            2,
            "shrink left noise windows behind"
        );
        assert_eq!(min[0].migration_loss.len(), 1);
        assert_eq!(min[1].duplication.len(), 1);
    }

    #[test]
    #[should_panic(expected = "needs a failing storm")]
    fn shrink_rejects_a_passing_storm() {
        let storm = vec![FaultSchedule::new()];
        let _ = shrink(storm, |_| false);
    }
}
