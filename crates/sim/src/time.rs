//! Simulation time.
//!
//! All simulation timestamps are nanoseconds since the start of the run,
//! held in a [`SimTime`] newtype. Durations are [`SimDuration`]. Both are
//! thin wrappers over `u64` so they are `Copy`, totally ordered, and cheap
//! to schedule on.
//!
//! Nanosecond resolution comfortably covers everything the WGTT model needs
//! to time: 802.11 slot times (9 µs), SIFS (10 µs), OFDM symbols (4 µs),
//! backhaul latencies (~100 µs), and switch-protocol round trips (~20 ms),
//! while a `u64` of nanoseconds still spans ~584 years of simulated time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time (nanoseconds since run start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far"
    /// deadline sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Panics on negative input.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0, "SimTime cannot be negative: {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds since run start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since run start (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since run start (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since run start as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is in
    /// the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction: `None` if `earlier` is after `self`.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Panics on negative input.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0, "SimDuration cannot be negative: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Duration needed to serialize `bits` at `bits_per_sec` on a link.
    ///
    /// Rounds up to a whole nanosecond so back-to-back transmissions never
    /// overlap due to truncation.
    #[inline]
    pub fn for_bits(bits: u64, bits_per_sec: u64) -> SimDuration {
        assert!(bits_per_sec > 0, "link rate must be positive");
        // ceil(bits * 1e9 / rate) using u128 to avoid overflow.
        let ns = ((bits as u128) * 1_000_000_000).div_ceil(bits_per_sec as u128);
        SimDuration(ns as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Saturates at zero if `rhs > self` — in **both** debug and release
    /// profiles. (An earlier version `debug_assert!`ed here, which meant a
    /// latent underflow could pass CI's debug tests yet silently saturate
    /// in `--release` benches; the profiles now agree.) Call sites that
    /// *want* to document saturation use [`SimTime::saturating_since`];
    /// sites that must detect reversal use [`SimTime::checked_since`].
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.saturating_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// Saturates at zero, identically in debug and release (see
    /// [`Sub<SimTime> for SimTime`]).
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: f64) -> SimDuration {
        debug_assert!(rhs >= 0.0);
        SimDuration((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.0 as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimTime::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_secs(3).as_nanos(), 3_000_000_000);
    }

    #[test]
    fn float_roundtrip() {
        let t = SimTime::from_secs_f64(1.25);
        assert_eq!(t.as_nanos(), 1_250_000_000);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);
        let d = SimDuration::from_secs_f64(0.5);
        assert_eq!(d.as_millis(), 500);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        let d = t - SimTime::from_millis(6);
        assert_eq!(d.as_millis(), 9);
        assert_eq!(
            SimTime::from_millis(1).saturating_since(SimTime::from_millis(2)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::from_millis(2).checked_since(SimTime::from_millis(3)),
            None
        );
        assert_eq!(SimDuration::from_millis(4) / 2, SimDuration::from_millis(2));
        assert_eq!(
            SimDuration::from_millis(4) * 3,
            SimDuration::from_millis(12)
        );
        assert_eq!(
            SimDuration::from_millis(4) * 0.5,
            SimDuration::from_millis(2)
        );
    }

    #[test]
    fn for_bits_rounds_up() {
        // 1000 bits at 1 Gbit/s = exactly 1000 ns.
        assert_eq!(SimDuration::for_bits(1000, 1_000_000_000).as_nanos(), 1000);
        // 1 bit at 3 bit/s = 333,333,333.33.. ns, rounds up.
        assert_eq!(SimDuration::for_bits(1, 3).as_nanos(), 333_333_334);
        // Zero bits takes zero time.
        assert_eq!(SimDuration::for_bits(0, 54_000_000), SimDuration::ZERO);
    }

    #[test]
    #[should_panic]
    fn for_bits_zero_rate_panics() {
        let _ = SimDuration::for_bits(1, 0);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000s");
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimDuration::from_millis(1).saturating_sub(SimDuration::from_millis(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn subtraction_saturates_in_every_profile() {
        // Underflowing subtraction must saturate to zero identically in
        // debug and release builds — this test pins the unified behavior
        // (an earlier version debug_assert!ed, so debug CI and release
        // benches disagreed on what `earlier - later` meant).
        let d = SimTime::from_millis(1) - SimTime::from_millis(5);
        assert_eq!(d, SimDuration::ZERO);
        // And it agrees with the explicit spelling.
        assert_eq!(
            d,
            SimTime::from_millis(1).saturating_since(SimTime::from_millis(5))
        );
        assert_eq!(
            SimDuration::from_micros(3) - SimDuration::from_micros(9),
            SimDuration::ZERO
        );
        let mut a = SimDuration::from_nanos(1);
        a -= SimDuration::from_nanos(2);
        assert_eq!(a, SimDuration::ZERO);
        // The detecting spelling still reports the reversal.
        assert_eq!(
            SimTime::from_millis(1).checked_since(SimTime::from_millis(5)),
            None
        );
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_micros(999) < SimDuration::from_millis(1));
        assert_eq!(SimTime::ZERO, SimTime::default());
    }
}
