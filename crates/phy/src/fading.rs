//! Small-scale multipath fading.
//!
//! This is the millisecond-scale structure that defines the paper's
//! *vehicular picocell regime* (Fig 2): alternating constructive and
//! destructive multipath on the spatial scale of one RF wavelength (≈12 cm
//! at 2.4 GHz), which at driving speed translates into channel coherence
//! times of a few milliseconds.
//!
//! The model is a classic tapped delay line:
//!
//! * a small number of taps with an exponential power-delay profile sets the
//!   delay spread, and therefore the *frequency selectivity* across the 56
//!   OFDM subcarriers that makes ESNR a better predictor than plain RSSI;
//! * each tap's complex gain evolves by a Jakes-style sum of sinusoids whose
//!   Doppler shifts scale with vehicle speed, which sets the *coherence
//!   time*;
//! * the first tap carries a Rician line-of-sight component (roadside APs
//!   usually see the car), later taps are Rayleigh.
//!
//! Gains are a deterministic function of `(tap parameters, time)`, so a
//! discrete-event simulation can sample the channel at arbitrary instants
//! without integrating state forward — and two APs observing the same
//! client get independent processes by construction (independent RNG
//! forks).

use crate::complex::Cplx;
use serde::{Deserialize, Serialize};
use wgtt_sim::SimRng;

/// Configuration of the tapped-delay-line fading process.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FadingConfig {
    /// Number of resolvable multipath taps.
    pub num_taps: usize,
    /// RMS delay spread in nanoseconds. Outdoor picocell ≈ 50–150 ns; the
    /// paper notes the small cells keep delay spread indoor-like, within the
    /// standard 802.11 cyclic prefix.
    pub rms_delay_spread_ns: f64,
    /// Rician K-factor of the first (LOS) tap, dB. Roadside LOS ≈ 3–9 dB.
    pub rician_k_db: f64,
    /// Number of sinusoids per tap in the sum-of-sinusoids Doppler model.
    pub num_sinusoids: usize,
}

impl Default for FadingConfig {
    fn default() -> Self {
        FadingConfig {
            num_taps: 5,
            rms_delay_spread_ns: 80.0,
            rician_k_db: 5.0,
            num_sinusoids: 16,
        }
    }
}

#[derive(Debug, Clone)]
struct Sinusoid {
    /// cos(angle of arrival) — multiplies the maximum Doppler shift.
    cos_aoa: f64,
    /// Initial phase.
    phase: f64,
}

#[derive(Debug, Clone)]
struct Tap {
    /// Mean power (all taps sum to 1).
    power: f64,
    /// Excess delay, seconds.
    delay_s: f64,
    /// Rician K (linear); 0 for pure Rayleigh taps.
    k: f64,
    /// Scattered component sinusoids.
    sinusoids: Vec<Sinusoid>,
    /// LOS component angle-of-arrival cosine and phase.
    los_cos_aoa: f64,
    los_phase: f64,
}

impl Tap {
    /// Complex gain of this tap at absolute time `t_s` with maximum Doppler
    /// `fd_hz`.
    fn gain(&self, t_s: f64, fd_hz: f64) -> Cplx {
        let two_pi = 2.0 * std::f64::consts::PI;
        let n = self.sinusoids.len() as f64;
        let mut scattered = Cplx::ZERO;
        for s in &self.sinusoids {
            scattered += Cplx::from_phase(two_pi * fd_hz * s.cos_aoa * t_s + s.phase);
        }
        scattered = scattered.scale((1.0 / n).sqrt());
        let scattered_amp = (self.power / (self.k + 1.0)).sqrt();
        let los_amp = (self.power * self.k / (self.k + 1.0)).sqrt();
        let los = Cplx::from_phase(two_pi * fd_hz * self.los_cos_aoa * t_s + self.los_phase)
            .scale(los_amp);
        scattered.scale(scattered_amp) + los
    }
}

/// A frequency-selective, time-varying fading channel between one AP and
/// one client.
#[derive(Debug, Clone)]
pub struct TappedDelayLine {
    taps: Vec<Tap>,
}

impl TappedDelayLine {
    /// Builds a channel realization. All randomness (tap phases, arrival
    /// angles) is drawn once here from `rng`, so the process is afterwards a
    /// pure function of time.
    pub fn new(cfg: &FadingConfig, rng: &mut SimRng) -> Self {
        assert!(cfg.num_taps >= 1, "need at least one tap");
        assert!(
            cfg.num_sinusoids >= 4,
            "too few sinusoids for smooth fading"
        );
        let k_lin = 10f64.powf(cfg.rician_k_db / 10.0);
        // Exponential power-delay profile sampled at uniform tap spacing.
        // Tap spacing chosen so the configured number of taps spans ≈3× the
        // RMS delay spread.
        let spacing_s = if cfg.num_taps == 1 {
            0.0
        } else {
            3.0 * cfg.rms_delay_spread_ns * 1e-9 / (cfg.num_taps - 1) as f64
        };
        let decay = cfg.rms_delay_spread_ns * 1e-9;
        let mut powers: Vec<f64> = (0..cfg.num_taps)
            .map(|i| {
                let delay = i as f64 * spacing_s;
                if decay > 0.0 {
                    (-delay / decay).exp()
                } else {
                    if i == 0 {
                        1.0
                    } else {
                        0.0
                    }
                }
            })
            .collect();
        let total: f64 = powers.iter().sum();
        for p in &mut powers {
            *p /= total;
        }

        let taps = powers
            .into_iter()
            .enumerate()
            .map(|(i, power)| {
                let sinusoids = (0..cfg.num_sinusoids)
                    .map(|_| Sinusoid {
                        // Uniform angle of arrival over the circle.
                        cos_aoa: rng.phase().cos(),
                        phase: rng.phase(),
                    })
                    .collect();
                Tap {
                    power,
                    delay_s: i as f64 * spacing_s,
                    k: if i == 0 { k_lin } else { 0.0 },
                    sinusoids,
                    los_cos_aoa: rng.phase().cos(),
                    los_phase: rng.phase(),
                }
            })
            .collect();
        TappedDelayLine { taps }
    }

    /// Number of taps.
    pub fn num_taps(&self) -> usize {
        self.taps.len()
    }

    /// Complex frequency response at the given subcarrier offsets (Hz from
    /// carrier), at absolute time `t_s` seconds, with maximum Doppler
    /// `fd_hz = v/λ`.
    ///
    /// `H_k(t) = Σ_i g_i(t) · e^{−j2π f_k τ_i}`; mean `|H_k|²` is 1, so the
    /// result multiplies a large-scale SNR directly.
    pub fn freq_response(&self, t_s: f64, fd_hz: f64, subcarriers_hz: &[f64]) -> Vec<Cplx> {
        let two_pi = 2.0 * std::f64::consts::PI;
        let gains: Vec<(Cplx, f64)> = self
            .taps
            .iter()
            .map(|tap| (tap.gain(t_s, fd_hz), tap.delay_s))
            .collect();
        subcarriers_hz
            .iter()
            .map(|&f| {
                let mut h = Cplx::ZERO;
                for &(g, delay) in &gains {
                    h += g * Cplx::from_phase(-two_pi * f * delay);
                }
                h
            })
            .collect()
    }

    /// Flat-fading power gain (|h|², averaged response at the carrier) —
    /// convenient for coarse RSSI-style measurements.
    pub fn power_gain(&self, t_s: f64, fd_hz: f64) -> f64 {
        self.freq_response(t_s, fd_hz, &[0.0])[0].abs2()
    }

    /// Static upper bound on `|H_k(t)|` over every time and subcarrier:
    /// the triangle inequality across taps, with each tap's scattered
    /// phasors assumed momentarily aligned. No realization of this channel
    /// can push any tone's amplitude above it, so a ranker can discard the
    /// link from its *mean* SNR alone — no fading evaluation — whenever
    /// even this ceiling cannot beat an incumbent.
    pub fn peak_gain_bound(&self) -> f64 {
        self.taps
            .iter()
            .map(|tap| {
                let n = tap.sinusoids.len() as f64;
                let scattered_peak = n * (1.0 / n).sqrt() * (tap.power / (tap.k + 1.0)).sqrt();
                let los = (tap.power * tap.k / (tap.k + 1.0)).sqrt();
                scattered_peak + los
            })
            .sum()
    }

    /// Precomputes the tap × subcarrier twiddle matrix
    /// `e^{−j2π f_k τ_i}` (row-major by tap) for
    /// [`Self::freq_response_into`]. The twiddles depend only on the tap
    /// delays and the subcarrier grid — both fixed at construction — so a
    /// link computes them once and reuses them for every CSI snapshot.
    /// Each entry is produced by the exact expression
    /// [`Self::freq_response`] evaluates inline, so the fast path stays
    /// bit-identical to the reference.
    pub fn twiddles(&self, subcarriers_hz: &[f64]) -> Vec<Cplx> {
        let two_pi = 2.0 * std::f64::consts::PI;
        let mut out = Vec::with_capacity(self.taps.len() * subcarriers_hz.len());
        for tap in &self.taps {
            for &f in subcarriers_hz {
                out.push(Cplx::from_phase(-two_pi * f * tap.delay_s));
            }
        }
        out
    }

    /// Allocation-free [`Self::freq_response`]: writes the response into
    /// `out` using a twiddle matrix from [`Self::twiddles`] over the same
    /// subcarrier grid (`twiddles.len() == num_taps · out.len()`).
    ///
    /// Bit-identical to the reference: the taps-outer loop performs, for
    /// each subcarrier, the same additions `h += g_i · w_{i,k}` in the same
    /// tap order 0..N as the reference's subcarrier-outer loop — locked by
    /// `twiddled_response_is_bit_exact`.
    pub fn freq_response_into(&self, t_s: f64, fd_hz: f64, twiddles: &[Cplx], out: &mut [Cplx]) {
        assert_eq!(
            twiddles.len(),
            self.taps.len() * out.len(),
            "twiddle matrix does not match this tap/subcarrier grid"
        );
        out.fill(Cplx::ZERO);
        for (tap, row) in self.taps.iter().zip(twiddles.chunks_exact(out.len())) {
            let g = tap.gain(t_s, fd_hz);
            for (h, &w) in out.iter_mut().zip(row) {
                *h += g * w;
            }
        }
    }
}

/// Maximum Doppler shift for a vehicle speed and carrier wavelength.
#[inline]
pub fn doppler_hz(speed_mps: f64, wavelength_m: f64) -> f64 {
    speed_mps / wavelength_m
}

/// Approximate channel coherence time (Clarke's model): `0.423 / f_d`.
#[inline]
pub fn coherence_time_s(fd_hz: f64) -> f64 {
    if fd_hz <= 0.0 {
        f64::INFINITY
    } else {
        0.423 / fd_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tdl(seed: u64) -> TappedDelayLine {
        TappedDelayLine::new(&FadingConfig::default(), &mut SimRng::new(seed))
    }

    fn ht20_subcarriers() -> Vec<f64> {
        crate::csi::subcarrier_offsets_hz().to_vec()
    }

    #[test]
    fn peak_gain_bound_holds_over_samples() {
        for seed in [3u64, 17, 99] {
            let line = tdl(seed);
            let bound = line.peak_gain_bound();
            let subs = ht20_subcarriers();
            for i in 0..400 {
                let t = i as f64 * 0.37e-3;
                for h in line.freq_response(t, 180.0, &subs) {
                    assert!(h.abs() <= bound, "seed {seed}: |H|={} > {bound}", h.abs());
                }
            }
        }
    }

    #[test]
    fn mean_power_is_unity() {
        // Average |H|² over many realizations and times ≈ 1.
        let subs = ht20_subcarriers();
        let mut acc = 0.0;
        let mut n = 0;
        for seed in 0..40 {
            let ch = tdl(seed);
            for step in 0..20 {
                let t = step as f64 * 0.013;
                for h in ch.freq_response(t, 50.0, &subs) {
                    acc += h.abs2();
                    n += 1;
                }
            }
        }
        let mean = acc / n as f64;
        assert!((mean - 1.0).abs() < 0.1, "mean power {mean}");
    }

    #[test]
    fn deterministic_in_time() {
        let ch = tdl(7);
        let subs = ht20_subcarriers();
        let a = ch.freq_response(1.234, 60.0, &subs);
        let b = ch.freq_response(1.234, 60.0, &subs);
        assert_eq!(a.len(), 56);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.re, y.re);
            assert_eq!(x.im, y.im);
        }
    }

    #[test]
    fn twiddled_response_is_bit_exact() {
        // The precomputed-twiddle fast path must reproduce the reference
        // response bit-for-bit across times, speeds, and tap counts.
        let subs = ht20_subcarriers();
        for num_taps in [1, 3, 5] {
            let cfg = FadingConfig {
                num_taps,
                ..FadingConfig::default()
            };
            let ch = TappedDelayLine::new(&cfg, &mut SimRng::new(17 + num_taps as u64));
            let tw = ch.twiddles(&subs);
            for step in 0..50 {
                let t = step as f64 * 0.0073;
                let fd = 10.0 + step as f64 * 3.0;
                let reference = ch.freq_response(t, fd, &subs);
                let mut fast = vec![Cplx::ZERO; subs.len()];
                ch.freq_response_into(t, fd, &tw, &mut fast);
                for (a, b) in reference.iter().zip(&fast) {
                    assert_eq!(a.re.to_bits(), b.re.to_bits());
                    assert_eq!(a.im.to_bits(), b.im.to_bits());
                }
            }
        }
    }

    #[test]
    fn different_seeds_are_independent() {
        let a = tdl(1).power_gain(0.5, 50.0);
        let b = tdl(2).power_gain(0.5, 50.0);
        assert!((a - b).abs() > 1e-9);
    }

    #[test]
    fn channel_decorrelates_beyond_coherence_time() {
        // At fd = 54 Hz (15 mph at 2.4 GHz) coherence ≈ 7.8 ms. The gain
        // should be strongly correlated at dt ≪ Tc and visibly changed at
        // dt ≫ Tc.
        let fd = 54.0;
        let tc = coherence_time_s(fd);
        let mut small_dt_diff = 0.0;
        let mut large_dt_diff = 0.0;
        let mut n = 0.0;
        for seed in 0..30 {
            let ch = tdl(seed);
            for i in 0..10 {
                let t = 0.05 * i as f64;
                let g0 = ch.power_gain(t, fd);
                small_dt_diff += (ch.power_gain(t + tc * 0.02, fd) - g0).abs();
                large_dt_diff += (ch.power_gain(t + tc * 5.0, fd) - g0).abs();
                n += 1.0;
            }
        }
        assert!(
            small_dt_diff / n < large_dt_diff / n / 3.0,
            "small {small_dt_diff} vs large {large_dt_diff}"
        );
    }

    #[test]
    fn zero_speed_freezes_channel() {
        let ch = tdl(3);
        let g0 = ch.power_gain(0.0, 0.0);
        let g1 = ch.power_gain(10.0, 0.0);
        assert!((g0 - g1).abs() < 1e-12);
    }

    #[test]
    fn frequency_selectivity_present() {
        // With ~80 ns delay spread, subcarriers across 17.5 MHz must see
        // meaningfully different gains.
        let ch = tdl(11);
        let subs = ht20_subcarriers();
        let h = ch.freq_response(0.2, 30.0, &subs);
        let powers: Vec<f64> = h
            .iter()
            .map(|x| 10.0 * x.abs2().max(1e-12).log10())
            .collect();
        let max = powers.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = powers.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max - min > 1.0, "spread {}", max - min);
    }

    #[test]
    fn single_tap_is_flat() {
        let cfg = FadingConfig {
            num_taps: 1,
            ..FadingConfig::default()
        };
        let ch = TappedDelayLine::new(&cfg, &mut SimRng::new(4));
        let subs = ht20_subcarriers();
        let h = ch.freq_response(0.3, 40.0, &subs);
        let p0 = h[0].abs2();
        for x in &h {
            assert!((x.abs2() - p0).abs() < 1e-9);
        }
    }

    #[test]
    fn high_k_reduces_fade_depth() {
        let deep = FadingConfig {
            rician_k_db: -20.0,
            ..FadingConfig::default()
        };
        let shallow = FadingConfig {
            rician_k_db: 15.0,
            num_taps: 1,
            ..FadingConfig::default()
        };
        let min_gain = |cfg: &FadingConfig| {
            let mut min: f64 = f64::INFINITY;
            for seed in 0..10 {
                let ch = TappedDelayLine::new(cfg, &mut SimRng::new(seed));
                for i in 0..400 {
                    min = min.min(ch.power_gain(i as f64 * 0.002, 54.0));
                }
            }
            min
        };
        assert!(min_gain(&shallow) > min_gain(&deep) * 5.0);
    }

    #[test]
    fn doppler_helpers() {
        // 15 mph = 6.7 m/s, λ = 0.122 m → fd ≈ 55 Hz.
        let fd = doppler_hz(6.7056, 0.1218);
        assert!((fd - 55.0).abs() < 1.0);
        // Coherence time ≈ 7.7 ms — same order as the paper's 2–3 ms claim.
        assert!((coherence_time_s(fd) - 0.0077).abs() < 0.001);
        assert_eq!(coherence_time_s(0.0), f64::INFINITY);
    }
}
