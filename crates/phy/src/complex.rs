//! Minimal complex arithmetic for channel modelling.
//!
//! The fading model works with complex baseband channel gains; rather than
//! pull in an external numerics crate, this module implements the small set
//! of operations required: addition, multiplication, scaling, conjugation,
//! magnitude, and `e^{jθ}`.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number in rectangular form.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cplx {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Cplx {
    /// Zero.
    pub const ZERO: Cplx = Cplx { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Cplx = Cplx { re: 1.0, im: 0.0 };

    /// Constructs from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Cplx { re, im }
    }

    /// `e^{jθ}` — the unit phasor with phase `theta` radians.
    ///
    /// Uses the in-repo [`crate::fastmath::sincos`] kernel: one fused
    /// reduction instead of two libm calls, and bit-identical phasors on
    /// every host.
    #[inline]
    pub fn from_phase(theta: f64) -> Self {
        let (im, re) = crate::fastmath::sincos(theta);
        Cplx { re, im }
    }

    /// Constructs from polar form (`r·e^{jθ}`).
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        let (s, c) = crate::fastmath::sincos(theta);
        Cplx {
            re: r * c,
            im: r * s,
        }
    }

    /// Squared magnitude `|z|²`.
    #[inline]
    pub fn abs2(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.abs2().sqrt()
    }

    /// Phase in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Cplx {
            re: self.re,
            im: -self.im,
        }
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Cplx {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Cplx {
    type Output = Cplx;
    #[inline]
    fn add(self, rhs: Cplx) -> Cplx {
        Cplx::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Cplx {
    #[inline]
    fn add_assign(&mut self, rhs: Cplx) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Cplx {
    type Output = Cplx;
    #[inline]
    fn sub(self, rhs: Cplx) -> Cplx {
        Cplx::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Cplx {
    type Output = Cplx;
    #[inline]
    fn mul(self, rhs: Cplx) -> Cplx {
        Cplx::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Cplx {
    type Output = Cplx;
    #[inline]
    fn neg(self) -> Cplx {
        Cplx::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic() {
        let a = Cplx::new(1.0, 2.0);
        let b = Cplx::new(3.0, -1.0);
        assert_eq!(a + b, Cplx::new(4.0, 1.0));
        assert_eq!(a - b, Cplx::new(-2.0, 3.0));
        // (1+2j)(3-1j) = 3 - j + 6j - 2j^2 = 5 + 5j
        assert_eq!(a * b, Cplx::new(5.0, 5.0));
        assert_eq!(-a, Cplx::new(-1.0, -2.0));
        let mut c = a;
        c += b;
        assert_eq!(c, Cplx::new(4.0, 1.0));
    }

    #[test]
    fn magnitude_and_phase() {
        let z = Cplx::new(3.0, 4.0);
        assert!(close(z.abs2(), 25.0));
        assert!(close(z.abs(), 5.0));
        let p = Cplx::from_phase(PI / 2.0);
        assert!(close(p.re, 0.0) || p.re.abs() < 1e-15);
        assert!(close(p.im, 1.0));
        assert!(close(p.arg(), PI / 2.0));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Cplx::from_polar(2.0, 0.7);
        assert!(close(z.abs(), 2.0));
        assert!(close(z.arg(), 0.7));
    }

    #[test]
    fn conjugate_multiplication_gives_power() {
        let z = Cplx::new(1.5, -2.5);
        let p = z * z.conj();
        assert!(close(p.re, z.abs2()));
        assert!(p.im.abs() < 1e-12);
    }

    #[test]
    fn unit_phasor_has_unit_magnitude() {
        for i in 0..64 {
            let theta = i as f64 * PI / 32.0;
            assert!((Cplx::from_phase(theta).abs() - 1.0).abs() < 1e-12);
        }
    }
}
