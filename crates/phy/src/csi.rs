//! Channel State Information.
//!
//! WGTT APs measure CSI on all 56 used subcarriers of each incoming 802.11n
//! HT20 frame (via the Atheros CSI Tool in the paper) and ship the readings
//! to the controller. Here a [`Csi`] is the per-subcarrier complex channel
//! response together with the link's large-scale SNR; per-subcarrier SNRs
//! in dB fall out directly and feed the ESNR computation.

use crate::complex::Cplx;
use crate::pathloss::linear_to_db;

/// Number of used subcarriers in an 802.11n HT20 channel (±1..±28).
pub const NUM_SUBCARRIERS: usize = 56;

/// Subcarrier spacing, Hz.
pub const SUBCARRIER_SPACING_HZ: f64 = 312_500.0;

/// Frequency offsets (Hz from the carrier) of the 56 used HT20 subcarriers:
/// indices −28..−1 and +1..+28 (DC is unused).
pub fn subcarrier_offsets_hz() -> [f64; NUM_SUBCARRIERS] {
    let mut out = [0.0; NUM_SUBCARRIERS];
    let mut i = 0;
    for k in -28i32..=28 {
        if k == 0 {
            continue;
        }
        out[i] = k as f64 * SUBCARRIER_SPACING_HZ;
        i += 1;
    }
    out
}

/// One CSI measurement: the complex response per subcarrier plus the
/// large-scale (mean) SNR the fading rides on.
///
/// The response is a fixed-size array: every HT20 snapshot has exactly 56
/// used subcarriers, and the inline storage keeps snapshot creation —
/// the hottest constructor in the simulator — off the heap entirely.
#[derive(Debug, Clone)]
pub struct Csi {
    /// Complex channel response per subcarrier, unit mean power.
    pub h: [Cplx; NUM_SUBCARRIERS],
    /// Large-scale SNR in dB (path loss + antenna + budget, no fast
    /// fading).
    pub mean_snr_db: f64,
}

impl Csi {
    /// Per-subcarrier SNR in dB: `mean_snr_db + 10·log10(|H_k|²)`.
    pub fn per_subcarrier_snr_db(&self) -> [f64; NUM_SUBCARRIERS] {
        let mut out = [0.0; NUM_SUBCARRIERS];
        for (o, h) in out.iter_mut().zip(&self.h) {
            *o = self.mean_snr_db + linear_to_db(h.abs2());
        }
        out
    }

    /// Per-subcarrier SNR in linear scale.
    pub fn per_subcarrier_snr_linear(&self) -> [f64; NUM_SUBCARRIERS] {
        let base = 10f64.powf(self.mean_snr_db / 10.0);
        let mut out = [0.0; NUM_SUBCARRIERS];
        for (o, h) in out.iter_mut().zip(&self.h) {
            *o = base * h.abs2();
        }
        out
    }

    /// Average received power SNR across subcarriers, in dB — what a plain
    /// RSSI measurement would report.
    pub fn rssi_snr_db(&self) -> f64 {
        let mean_gain = self.h.iter().map(|h| h.abs2()).sum::<f64>() / self.h.len().max(1) as f64;
        self.mean_snr_db + linear_to_db(mean_gain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_cover_both_sidebands() {
        let offs = subcarrier_offsets_hz();
        assert_eq!(offs.len(), 56);
        assert_eq!(offs[0], -28.0 * SUBCARRIER_SPACING_HZ);
        assert_eq!(offs[55], 28.0 * SUBCARRIER_SPACING_HZ);
        // DC (0 Hz) is excluded.
        assert!(offs.iter().all(|&f| f != 0.0));
        // Strictly increasing.
        for w in offs.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Span ≈ 17.5 MHz.
        assert!((offs[55] - offs[0] - 17.5e6).abs() < 1.0);
    }

    #[test]
    fn flat_channel_snrs_equal_mean() {
        let csi = Csi {
            h: [Cplx::ONE; NUM_SUBCARRIERS],
            mean_snr_db: 25.0,
        };
        for snr in csi.per_subcarrier_snr_db() {
            assert!((snr - 25.0).abs() < 1e-9);
        }
        assert!((csi.rssi_snr_db() - 25.0).abs() < 1e-9);
        let lin = csi.per_subcarrier_snr_linear();
        assert!((lin[0] - 10f64.powf(2.5)).abs() < 1e-6);
    }

    #[test]
    fn faded_subcarrier_drops_snr() {
        let mut h = [Cplx::ONE; NUM_SUBCARRIERS];
        h[10] = Cplx::new(0.1, 0.0); // 20 dB fade
        let csi = Csi {
            h,
            mean_snr_db: 30.0,
        };
        let snrs = csi.per_subcarrier_snr_db();
        assert!((snrs[10] - 10.0).abs() < 1e-9);
        assert!((snrs[0] - 30.0).abs() < 1e-9);
        // RSSI barely notices one faded subcarrier.
        assert!(csi.rssi_snr_db() > 29.0);
    }

    #[test]
    fn zero_channel_clamps() {
        let csi = Csi {
            h: [Cplx::ZERO; NUM_SUBCARRIERS],
            mean_snr_db: 20.0,
        };
        for snr in csi.per_subcarrier_snr_db() {
            assert!(snr <= -200.0);
        }
    }
}
