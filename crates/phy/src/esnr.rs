//! Effective SNR (Halperin et al., SIGCOMM 2010).
//!
//! Plain average SNR (RSSI) over-estimates delivery probability on a
//! frequency-selective channel: one deeply faded subcarrier ruins a frame
//! even when the average looks healthy. Effective SNR fixes this by mapping
//! each subcarrier's SNR to an uncoded bit error rate for the modulation in
//! use, averaging the *error rates*, and mapping the average back to the
//! SNR that would produce it on a flat channel:
//!
//! ```text
//! ESNR_m = BER_m⁻¹( mean_k BER_m(SNR_k) )
//! ```
//!
//! This is the metric the WGTT controller compares across APs (§3.1.1 of
//! the paper).

use crate::csi::{Csi, NUM_SUBCARRIERS};
use crate::pathloss::linear_to_db;

/// Modulation schemes used by 802.11n single-stream MCS 0–7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Modulation {
    /// Binary phase shift keying (MCS 0).
    Bpsk,
    /// Quadrature PSK (MCS 1–2).
    Qpsk,
    /// 16-point QAM (MCS 3–4).
    Qam16,
    /// 64-point QAM (MCS 5–7).
    Qam64,
}

impl Modulation {
    /// All modulations, densest last — indexable by [`Modulation::index`].
    pub const ALL: [Modulation; 4] = [
        Modulation::Bpsk,
        Modulation::Qpsk,
        Modulation::Qam16,
        Modulation::Qam64,
    ];

    /// Bits carried per subcarrier per symbol.
    pub fn bits_per_symbol(self) -> u32 {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }

    /// Dense index into per-modulation tables (`ALL[m.index()] == m`).
    pub fn index(self) -> usize {
        match self {
            Modulation::Bpsk => 0,
            Modulation::Qpsk => 1,
            Modulation::Qam16 => 2,
            Modulation::Qam64 => 3,
        }
    }
}

/// The exponent polynomial of the A&S 7.1.26 erfc approximation:
/// `erfc(z) = t·exp(−z² + B(t))` for `z ≥ 0`, `t = 1/(1 + z/2)`.
#[inline]
fn erfc_poly(t: f64) -> f64 {
    -1.26551223
        + t * (1.00002368
            + t * (0.37409196
                + t * (0.09678418
                    + t * (-0.18628806
                        + t * (0.27886807
                            + t * (-1.13520398
                                + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277))))))))
}

/// Complementary error function.
///
/// Abramowitz & Stegun 7.1.26-based rational approximation with |ε| ≤
/// 1.5·10⁻⁷, extended to the full real line by symmetry. Accurate enough
/// for BER work, where the inputs live within a few tens of dB. The inner
/// exponential uses the deterministic [`crate::fastmath::exp`] kernel, so
/// BER values do not depend on the host libm.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let tau = t * crate::fastmath::exp(-z * z + erfc_poly(t));
    if x >= 0.0 {
        tau
    } else {
        2.0 - tau
    }
}

/// `ln erfc(z)` and its derivative for `z ≥ 0`, from the closed form of the
/// same approximation [`erfc`] uses: `ln t − z² + B(t)`.
///
/// Evaluating the logarithm analytically never under- or overflows, which
/// is what lets [`ber_inverse`] run Newton's method at BERs far below the
/// smallest subnormal of the linear-domain function.
#[inline]
fn ln_erfc_with_deriv(z: f64) -> (f64, f64) {
    let t = 1.0 / (1.0 + 0.5 * z);
    let val = crate::fastmath::ln(t) - z * z + erfc_poly(t);
    // B'(t), then chain through dt/dz = −t²/2; d(ln t)/dz = −t/2.
    let bp = 1.00002368
        + t * (2.0 * 0.37409196
            + t * (3.0 * 0.09678418
                + t * (4.0 * -0.18628806
                    + t * (5.0 * 0.27886807
                        + t * (6.0 * -1.13520398
                            + t * (7.0 * 1.48851587
                                + t * (8.0 * -0.82215223 + t * (9.0 * 0.17087277))))))));
    let deriv = -0.5 * t - 2.0 * z - 0.5 * t * t * bp;
    (val, deriv)
}

/// The Gaussian Q-function, `Q(x) = ½·erfc(x/√2)`.
#[inline]
pub fn q_func(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Uncoded bit error rate for a modulation at symbol SNR `snr` (linear).
///
/// These are the standard Gray-coded approximations used by the ESNR paper:
///
/// * BPSK:   `Q(√(2γ))`
/// * QPSK:   `Q(√γ)`
/// * 16-QAM: `¾·Q(√(γ/5))`
/// * 64-QAM: `7⁄12·Q(√(γ/21))`
pub fn ber(modulation: Modulation, snr_linear: f64) -> f64 {
    let g = snr_linear.max(0.0);
    match modulation {
        Modulation::Bpsk => q_func((2.0 * g).sqrt()),
        Modulation::Qpsk => q_func(g.sqrt()),
        Modulation::Qam16 => 0.75 * q_func((g / 5.0).sqrt()),
        Modulation::Qam64 => (7.0 / 12.0) * q_func((g / 21.0).sqrt()),
    }
}

/// `(c, k)` such that `ber(m, g) = c·Q(√(g/k))`.
#[inline]
fn q_params(modulation: Modulation) -> (f64, f64) {
    match modulation {
        Modulation::Bpsk => (1.0, 0.5),
        Modulation::Qpsk => (1.0, 1.0),
        Modulation::Qam16 => (0.75, 5.0),
        Modulation::Qam64 => (7.0 / 12.0, 21.0),
    }
}

/// Inverse of [`ber`]: the (linear) SNR at which the modulation attains the
/// given bit error rate.
///
/// Every modulation's BER is `c·Q(√(g/k))`, so inverting it is one erfc
/// inversion: solve `erfc(u) = 2·target/c` for `u = √(g/2k)`. A
/// probit-style initial guess is polished by safeguarded Newton iteration
/// on the analytic log-domain closed form of [`erfc`]'s approximation
/// ([`ln_erfc_with_deriv`]) — typically 4–6 evaluations where the former
/// geometric bisection needed ~46 full BER evaluations, and immune to the
/// underflow that makes the linear-domain function flat at high SNR. A
/// shrinking bracket guarantees convergence even if a Newton step misfires.
pub fn ber_inverse(modulation: Modulation, target_ber: f64) -> f64 {
    // Outside the achievable range, clamp to the search bounds.
    let (lo, hi) = (1e-9, 1e9);
    if target_ber >= ber(modulation, lo) {
        return lo;
    }
    if target_ber <= ber(modulation, hi) {
        return hi;
    }
    let (c, k) = q_params(modulation);
    // After the clamps, erfc(u) = y has its root strictly inside
    // [√(lo/2k), √(hi/2k)] — erfc evaluated analytically in the log domain
    // cannot underflow, so the bracket endpoints need no special cases.
    let ln_y = crate::fastmath::ln(2.0 * target_ber / c);
    let mut blo = (lo / (2.0 * k)).sqrt();
    let mut bhi = (hi / (2.0 * k)).sqrt();
    let mut u = if ln_y > -std::f64::consts::LN_2 {
        // y > ½ ⇒ small root: erfc(u) ≈ 1 − 2u/√π.
        0.886_226_925_452_758 * (1.0 - crate::fastmath::exp(ln_y))
    } else {
        // Asymptotic tail: ln erfc(u) ≈ −u² − ln(u√π).
        let u0 = (-ln_y).sqrt();
        (-ln_y - crate::fastmath::ln(1.772_453_850_905_516 * u0))
            .max(0.25)
            .sqrt()
    }
    .clamp(blo, bhi);
    for _ in 0..80 {
        let (f, df) = ln_erfc_with_deriv(u);
        let g = f - ln_y;
        if g > 0.0 {
            blo = u; // erfc(u) still above the target ⇒ root is to the right
        } else {
            bhi = u;
        }
        let mut next = u - g / df;
        if !(next > blo && next < bhi) {
            next = (blo * bhi).sqrt(); // safeguard: geometric bisection step
        }
        let done = (next - u).abs() <= 1e-14 * u;
        u = next;
        if done {
            break;
        }
    }
    2.0 * k * u * u
}

/// Effective SNR in dB for a modulation given per-subcarrier linear SNRs.
pub fn esnr_db(modulation: Modulation, snr_linear: &[f64]) -> f64 {
    if snr_linear.is_empty() {
        return -300.0;
    }
    let mean_ber =
        snr_linear.iter().map(|&s| ber(modulation, s)).sum::<f64>() / snr_linear.len() as f64;
    let e = linear_to_db(ber_inverse(modulation, mean_ber));
    // When every tone's BER underflows to zero the inversion saturates at
    // its search bound; physically the effective SNR can never exceed the
    // best tone.
    let max_tone = snr_linear.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    e.min(linear_to_db(max_tone))
}

/// Effective SNR in dB straight from a CSI measurement.
pub fn esnr_from_csi(modulation: Modulation, csi: &Csi) -> f64 {
    esnr_db(modulation, &csi.per_subcarrier_snr_linear())
}

/// Memoized per-modulation ESNR for **one** CSI snapshot.
///
/// The ESNR integration (56 BER evaluations plus a bisection inversion) is
/// the single hottest computation in the simulator: every MPDU delivery
/// draw, Block-ACK reception, rate-control decision, and controller CSI
/// report needs an ESNR, and one transmission queries the *same* snapshot
/// under several modulations (data MCS, QPSK control frames, the
/// controller's 16-QAM reference) — and an A-MPDU burst repeats the data-MCS
/// query once per MPDU. This memo computes the per-subcarrier SNR vector
/// once and each modulation's ESNR at most once, returning bit-identical
/// values to the corresponding [`esnr_from_csi`] calls (it delegates to the
/// same [`esnr_db`] on the same input — locked by `memo_matches_direct`).
pub struct EsnrMemo {
    snr_linear: [f64; NUM_SUBCARRIERS],
    cache: [Option<f64>; 4],
}

impl EsnrMemo {
    /// Captures the snapshot's per-subcarrier SNRs (computed once).
    pub fn new(csi: &Csi) -> Self {
        EsnrMemo {
            snr_linear: csi.per_subcarrier_snr_linear(),
            cache: [None; 4],
        }
    }

    /// The best tone's SNR in dB — an exact upper bound on
    /// [`Self::esnr_db`] for **every** modulation, since `esnr_db` clamps
    /// to it. One pass over the SNR vector, no BER work: rankers use it to
    /// skip the full integration for snapshots that cannot beat an
    /// incumbent (the comparison is bit-exact because the clamp inside
    /// `esnr_db` computes the identical fold).
    pub fn best_tone_db(&self) -> f64 {
        let max_tone = self
            .snr_linear
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        linear_to_db(max_tone)
    }

    /// The snapshot's ESNR in dB for `modulation`, computed on first use.
    pub fn esnr_db(&mut self, modulation: Modulation) -> f64 {
        let i = modulation.index();
        if let Some(v) = self.cache[i] {
            return v;
        }
        let v = esnr_db(modulation, &self.snr_linear);
        self.cache[i] = Some(v);
        v
    }
}

/// The scalar ESNR used by the WGTT controller for AP ranking.
///
/// The paper computes "the" ESNR of each reading; ranking quality is
/// insensitive to the reference modulation as long as it is applied
/// uniformly, and 16-QAM sits in the middle of the operating range, so we
/// adopt it as the reference.
pub fn controller_esnr_db(csi: &Csi) -> f64 {
    esnr_from_csi(Modulation::Qam16, csi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Cplx;
    use crate::pathloss::db_to_linear;

    #[test]
    fn erfc_reference_values() {
        // erfc(0) = 1, erfc(∞) → 0, erfc(−x) = 2 − erfc(x).
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!(erfc(5.0) < 1e-11);
        assert!((erfc(-1.0) + erfc(1.0) - 2.0).abs() < 1e-7);
        // erfc(1) ≈ 0.157299.
        assert!((erfc(1.0) - 0.157299).abs() < 1e-5);
        // erfc(0.5) ≈ 0.479500.
        assert!((erfc(0.5) - 0.4795).abs() < 1e-4);
    }

    #[test]
    fn q_func_reference() {
        // Q(0) = 0.5, Q(1.6449) ≈ 0.05.
        assert!((q_func(0.0) - 0.5).abs() < 1e-6);
        assert!((q_func(1.6449) - 0.05).abs() < 1e-4);
    }

    #[test]
    fn ber_ordering_by_modulation() {
        // At a fixed SNR, denser constellations have a higher BER.
        let g = db_to_linear(12.0);
        assert!(ber(Modulation::Bpsk, g) < ber(Modulation::Qpsk, g));
        assert!(ber(Modulation::Qpsk, g) < ber(Modulation::Qam16, g));
        assert!(ber(Modulation::Qam16, g) < ber(Modulation::Qam64, g));
    }

    #[test]
    fn ber_decreasing_in_snr() {
        for m in [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
        ] {
            let mut prev = ber(m, db_to_linear(-5.0));
            for db in [0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0] {
                let b = ber(m, db_to_linear(db));
                assert!(b < prev);
                prev = b;
            }
        }
    }

    #[test]
    fn ber_inverse_roundtrip() {
        for m in [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
        ] {
            for db in [2.0, 8.0, 14.0, 20.0, 26.0] {
                let g = db_to_linear(db);
                let b = ber(m, g);
                if b > 1e-14 {
                    let back = ber_inverse(m, b);
                    assert!(
                        (linear_to_db(back) - db).abs() < 0.01,
                        "{m:?} {db} dB -> {} dB",
                        linear_to_db(back)
                    );
                }
            }
        }
    }

    /// The pre-Newton reference implementation: geometric bisection over
    /// the same [`ber`], kept to pin the fast inversion's accuracy.
    fn ber_inverse_bisect(modulation: Modulation, target_ber: f64) -> f64 {
        let (mut lo, mut hi) = (1e-9, 1e9);
        if target_ber >= ber(modulation, lo) {
            return lo;
        }
        if target_ber <= ber(modulation, hi) {
            return hi;
        }
        for _ in 0..200 {
            let mid = (lo * hi).sqrt();
            if ber(modulation, mid) > target_ber {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi / lo < 1.0 + 1e-12 {
                break;
            }
        }
        (lo * hi).sqrt()
    }

    #[test]
    fn newton_inverse_matches_bisection_reference() {
        for m in Modulation::ALL {
            // SNR grid from −80 to +80 dB: targets from ~c/2 down past the
            // underflow floor of the linear-domain erfc (where both sides
            // must clamp identically).
            for i in 0..=400 {
                let db = -80.0 + 0.4 * i as f64;
                let t = ber(m, db_to_linear(db));
                let got = ber_inverse(m, t);
                let want = ber_inverse_bisect(m, t);
                let rel = ((got - want) / want).abs();
                assert!(
                    rel < 1e-9,
                    "{m:?} target {t:e}: newton {got:e} vs bisect {want:e}"
                );
            }
        }
    }

    #[test]
    fn flat_channel_esnr_equals_snr() {
        let snrs = vec![db_to_linear(18.0); 56];
        let e = esnr_db(Modulation::Qam16, &snrs);
        assert!((e - 18.0).abs() < 0.05, "esnr {e}");
    }

    #[test]
    fn esnr_below_mean_on_selective_channel() {
        // 55 subcarriers at 25 dB, one at −5 dB: the mean SNR stays ≈24.9 dB
        // but ESNR must drop noticeably below it.
        let mut snrs = vec![db_to_linear(25.0); 55];
        snrs.push(db_to_linear(-5.0));
        let e = esnr_db(Modulation::Qam16, &snrs);
        assert!(e < 20.0, "esnr {e}");
        // And ESNR never exceeds the best subcarrier.
        assert!(e > -5.1);
    }

    #[test]
    fn esnr_from_csi_consistent() {
        let csi = Csi {
            h: [Cplx::ONE; 56],
            mean_snr_db: 21.0,
        };
        let e = esnr_from_csi(Modulation::Qam16, &csi);
        assert!((e - 21.0).abs() < 0.05);
        let c = controller_esnr_db(&csi);
        assert!((c - e).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_floor() {
        assert_eq!(esnr_db(Modulation::Qpsk, &[]), -300.0);
    }

    #[test]
    fn memo_matches_direct() {
        // The memo must be bit-identical to per-call esnr_from_csi — it is
        // a pure cache, not a numerical shortcut.
        let mut h = [Cplx::ZERO; 56];
        for (i, x) in h.iter_mut().enumerate() {
            let re = 0.3 + (i as f64 * 0.37).sin();
            let im = (i as f64 * 0.11).cos() * 0.8;
            *x = Cplx::new(re, im);
        }
        let csi = Csi {
            h,
            mean_snr_db: 17.3,
        };
        let mut memo = EsnrMemo::new(&csi);
        for m in Modulation::ALL {
            let direct = esnr_from_csi(m, &csi);
            // Repeated queries hit the cache and must not drift.
            assert_eq!(memo.esnr_db(m).to_bits(), direct.to_bits(), "{m:?}");
            assert_eq!(memo.esnr_db(m).to_bits(), direct.to_bits(), "{m:?}");
        }
    }

    #[test]
    fn best_tone_bounds_every_modulation() {
        let mut h = [Cplx::ZERO; 56];
        for (i, x) in h.iter_mut().enumerate() {
            *x = Cplx::new(0.2 + (i as f64 * 0.53).sin(), (i as f64 * 0.29).cos() * 1.1);
        }
        for snr in [-3.0, 8.0, 19.0, 33.0] {
            let csi = Csi {
                h,
                mean_snr_db: snr,
            };
            let mut memo = EsnrMemo::new(&csi);
            let bound = memo.best_tone_db();
            for m in Modulation::ALL {
                assert!(memo.esnr_db(m) <= bound, "{m:?} at {snr} dB");
            }
        }
    }

    #[test]
    fn modulation_index_roundtrip() {
        for (i, m) in Modulation::ALL.iter().enumerate() {
            assert_eq!(m.index(), i);
        }
    }

    #[test]
    fn esnr_saturates_at_best_tone() {
        // BER underflow at very high SNR must not blow ESNR past the best
        // subcarrier.
        let snrs = vec![db_to_linear(34.5)];
        let e = esnr_db(Modulation::Bpsk, &snrs);
        assert!((e - 34.5).abs() < 0.01, "esnr {e}");
    }

    #[test]
    fn bits_per_symbol() {
        assert_eq!(Modulation::Bpsk.bits_per_symbol(), 1);
        assert_eq!(Modulation::Qpsk.bits_per_symbol(), 2);
        assert_eq!(Modulation::Qam16.bits_per_symbol(), 4);
        assert_eq!(Modulation::Qam64.bits_per_symbol(), 6);
    }
}
