//! Bit-rate adaptation.
//!
//! The paper runs the APs' *default rate control* unmodified (§4) — on
//! ath9k that is Minstrel HT. This module implements a compact
//! Minstrel-style controller: it maintains an EWMA of per-MCS delivery
//! probability from transmission feedback, ranks rates by expected
//! throughput, transmits at the best rate, and spends a small fraction of
//! frames probing other rates so it can climb back up when the channel
//! improves.
//!
//! The controller is a poll-style state machine: [`MinstrelLite::select`]
//! chooses a rate, the MAC reports the outcome through
//! [`MinstrelLite::on_tx_result`].

use crate::mcs::{GuardInterval, Mcs};
use wgtt_sim::{SimRng, SimTime};

/// Per-rate bookkeeping.
#[derive(Debug, Clone)]
struct RateStat {
    /// EWMA of delivery probability.
    prob: f64,
    /// Whether any feedback has arrived yet.
    seen: bool,
    /// Attempts since the last stats window rollover.
    attempts: u32,
    /// Successes since the last stats window rollover.
    successes: u32,
}

impl RateStat {
    fn new() -> Self {
        RateStat {
            prob: 0.0,
            seen: false,
            attempts: 0,
            successes: 0,
        }
    }
}

/// Minstrel-style rate controller for one client link.
#[derive(Debug, Clone)]
pub struct MinstrelLite {
    stats: Vec<RateStat>,
    gi: GuardInterval,
    /// EWMA weight for new window observations (Minstrel default ≈ 0.25).
    ewma_alpha: f64,
    /// Probability of sending a probe frame at a non-best rate.
    probe_prob: f64,
    /// Stats window length.
    window: wgtt_sim::SimDuration,
    window_start: SimTime,
    /// Optimistic initial success probability for unseen rates, so the
    /// controller starts by sampling downward from high rates rather than
    /// crawling up from MCS 0 (matches Minstrel's optimistic init).
    init_prob: f64,
}

impl MinstrelLite {
    /// Creates a controller with Minstrel-like defaults.
    pub fn new(gi: GuardInterval) -> Self {
        MinstrelLite {
            stats: (0..8).map(|_| RateStat::new()).collect(),
            gi,
            ewma_alpha: 0.25,
            probe_prob: 0.1,
            window: wgtt_sim::SimDuration::from_millis(50),
            window_start: SimTime::ZERO,
            init_prob: 0.5,
        }
    }

    /// The guard interval this controller assumes.
    pub fn guard_interval(&self) -> GuardInterval {
        self.gi
    }

    fn effective_prob(&self, mcs: Mcs) -> f64 {
        let s = &self.stats[mcs.0 as usize];
        let mut p = if s.seen { s.prob } else { self.init_prob };
        // Blend in the current (unrolled) window so fresh collapses are
        // noticed before the window closes.
        if s.attempts >= 4 {
            let inst = s.successes as f64 / s.attempts as f64;
            p = 0.5 * p + 0.5 * inst;
        }
        p
    }

    /// Expected throughput of an MCS under current statistics, bit/s.
    pub fn expected_tput_bps(&self, mcs: Mcs) -> f64 {
        mcs.data_rate_bps(self.gi) as f64 * self.effective_prob(mcs)
    }

    /// The current best rate by expected throughput.
    pub fn best_rate(&self) -> Mcs {
        Mcs::all()
            .max_by(|a, b| {
                self.expected_tput_bps(*a)
                    .partial_cmp(&self.expected_tput_bps(*b))
                    .expect("throughput is not NaN")
            })
            .expect("rate set non-empty")
    }

    /// Chooses the rate for the next transmission. Mostly the best rate,
    /// occasionally a probe of an adjacent rate.
    pub fn select(&mut self, now: SimTime, rng: &mut SimRng) -> Mcs {
        self.maybe_roll_window(now);
        let best = self.best_rate();
        if rng.chance(self.probe_prob) {
            // Probe one step up (preferred — that's the climb path) or one
            // step down.
            if rng.chance(0.7) {
                best.up().unwrap_or(best)
            } else {
                best.down().unwrap_or(best)
            }
        } else {
            best
        }
    }

    /// Reports the outcome of a transmission at `mcs`.
    pub fn on_tx_result(&mut self, now: SimTime, mcs: Mcs, success: bool) {
        self.maybe_roll_window(now);
        let s = &mut self.stats[mcs.0 as usize];
        s.attempts += 1;
        if success {
            s.successes += 1;
        }
    }

    /// Resets all statistics (e.g. after a long idle period).
    pub fn reset(&mut self) {
        for s in &mut self.stats {
            *s = RateStat::new();
        }
    }

    fn maybe_roll_window(&mut self, now: SimTime) {
        if now.saturating_since(self.window_start) < self.window {
            return;
        }
        self.window_start = now;
        for s in &mut self.stats {
            if s.attempts > 0 {
                let inst = s.successes as f64 / s.attempts as f64;
                s.prob = if s.seen {
                    s.prob + self.ewma_alpha * (inst - s.prob)
                } else {
                    inst
                };
                s.seen = true;
            } else if s.seen {
                // No samples this window: decay confidence slowly toward
                // optimism so a stale "dead" verdict doesn't stick forever.
                s.prob += 0.05 * (self.init_prob - s.prob);
            }
            s.attempts = 0;
            s.successes = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wgtt_sim::SimDuration;

    fn drive(
        ctl: &mut MinstrelLite,
        rng: &mut SimRng,
        frames: usize,
        // Success probability by MCS index.
        p: impl Fn(Mcs) -> f64,
    ) -> Vec<Mcs> {
        let mut chosen = Vec::new();
        let mut now = SimTime::ZERO;
        for _ in 0..frames {
            let mcs = ctl.select(now, rng);
            chosen.push(mcs);
            let ok = rng.chance(p(mcs));
            ctl.on_tx_result(now, mcs, ok);
            now += SimDuration::from_micros(500);
        }
        chosen
    }

    #[test]
    fn converges_to_best_rate_good_channel() {
        // All rates succeed: MCS7 maximizes throughput.
        let mut ctl = MinstrelLite::new(GuardInterval::Short);
        let mut rng = SimRng::new(1);
        let chosen = drive(&mut ctl, &mut rng, 3000, |_| 1.0);
        let tail = &chosen[2000..];
        let m7 = tail.iter().filter(|m| **m == Mcs(7)).count();
        assert!(m7 as f64 / tail.len() as f64 > 0.8, "MCS7 share {m7}");
        assert_eq!(ctl.best_rate(), Mcs(7));
    }

    #[test]
    fn converges_down_on_poor_channel() {
        // Only MCS 0–2 deliver; everything above fails.
        let mut ctl = MinstrelLite::new(GuardInterval::Long);
        let mut rng = SimRng::new(2);
        let chosen = drive(
            &mut ctl,
            &mut rng,
            3000,
            |m| if m.0 <= 2 { 0.95 } else { 0.0 },
        );
        let tail = &chosen[2000..];
        let low = tail.iter().filter(|m| m.0 <= 2).count();
        assert!(low as f64 / tail.len() as f64 > 0.8);
        assert_eq!(ctl.best_rate(), Mcs(2));
    }

    #[test]
    fn picks_intermediate_optimum() {
        // MCS4 at 90% beats MCS5 at 30%: 39·0.9=35.1 vs 52·0.3=15.6 Mbit/s.
        let mut ctl = MinstrelLite::new(GuardInterval::Long);
        let mut rng = SimRng::new(3);
        drive(&mut ctl, &mut rng, 4000, |m| match m.0 {
            0..=4 => 0.9,
            5 => 0.3,
            _ => 0.0,
        });
        assert_eq!(ctl.best_rate(), Mcs(4));
    }

    #[test]
    fn recovers_when_channel_improves() {
        let mut ctl = MinstrelLite::new(GuardInterval::Long);
        let mut rng = SimRng::new(4);
        // Phase 1: bad channel.
        drive(
            &mut ctl,
            &mut rng,
            2000,
            |m| if m.0 == 0 { 0.9 } else { 0.05 },
        );
        let bad_best = ctl.best_rate();
        assert!(bad_best <= Mcs(1));
        // Phase 2: channel opens up; probing must climb back.
        drive(&mut ctl, &mut rng, 6000, |_| 1.0);
        assert!(ctl.best_rate() >= Mcs(5), "stuck at {}", ctl.best_rate());
    }

    #[test]
    fn probing_explores_nonbest_rates() {
        let mut ctl = MinstrelLite::new(GuardInterval::Long);
        let mut rng = SimRng::new(5);
        let chosen = drive(&mut ctl, &mut rng, 2000, |_| 1.0);
        let best = ctl.best_rate();
        let probes = chosen[1000..].iter().filter(|m| **m != best).count();
        assert!(probes > 20, "no probing happened: {probes}");
    }

    #[test]
    fn reset_clears_memory() {
        let mut ctl = MinstrelLite::new(GuardInterval::Long);
        let mut rng = SimRng::new(6);
        drive(
            &mut ctl,
            &mut rng,
            1000,
            |m| if m.0 == 0 { 1.0 } else { 0.0 },
        );
        ctl.reset();
        // After reset, optimistic init ranks MCS7 best again.
        assert_eq!(ctl.best_rate(), Mcs(7));
    }
}
