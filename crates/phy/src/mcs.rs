//! 802.11n HT modulation and coding schemes (single spatial stream).
//!
//! The testbed APs drive one spatial stream over a 20 MHz channel (the
//! paper's splitter-combiner merges the three radio chains into one
//! directional antenna), so MCS 0–7 is the full rate set. Short guard
//! interval is enabled, which is how the paper's Fig 16 reaches link rates
//! of ~70 Mbit/s (72.2 Mbit/s is MCS 7 @ SGI).

use crate::esnr::Modulation;
use serde::{Deserialize, Serialize};

/// Guard interval length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GuardInterval {
    /// 800 ns (symbol = 4.0 µs).
    Long,
    /// 400 ns (symbol = 3.6 µs).
    Short,
}

impl GuardInterval {
    /// OFDM symbol duration in nanoseconds.
    pub fn symbol_ns(self) -> u64 {
        match self {
            GuardInterval::Long => 4_000,
            GuardInterval::Short => 3_600,
        }
    }
}

/// An HT MCS index, 0–7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Mcs(pub u8);

impl Mcs {
    /// Lowest MCS.
    pub const MIN: Mcs = Mcs(0);
    /// Highest single-stream MCS.
    pub const MAX: Mcs = Mcs(7);

    /// All MCS values, ascending.
    pub fn all() -> impl DoubleEndedIterator<Item = Mcs> {
        (0..=7).map(Mcs)
    }

    /// Next faster MCS, if any.
    pub fn up(self) -> Option<Mcs> {
        (self.0 < 7).then(|| Mcs(self.0 + 1))
    }

    /// Next slower MCS, if any.
    pub fn down(self) -> Option<Mcs> {
        (self.0 > 0).then(|| Mcs(self.0 - 1))
    }

    /// Modulation used by this MCS.
    pub fn modulation(self) -> Modulation {
        match self.0 {
            0 => Modulation::Bpsk,
            1 | 2 => Modulation::Qpsk,
            3 | 4 => Modulation::Qam16,
            _ => Modulation::Qam64,
        }
    }

    /// Convolutional code rate as `(numerator, denominator)`.
    pub fn code_rate(self) -> (u32, u32) {
        match self.0 {
            0 | 1 | 3 => (1, 2),
            2 | 4 | 6 => (3, 4),
            5 => (2, 3),
            7 => (5, 6),
            _ => unreachable!("invalid MCS index {}", self.0),
        }
    }

    /// Data bits per OFDM symbol (HT20: 52 data subcarriers).
    pub fn ndbps(self) -> u32 {
        const DATA_SUBCARRIERS: u32 = 52;
        let (num, den) = self.code_rate();
        DATA_SUBCARRIERS * self.modulation().bits_per_symbol() * num / den
    }

    /// PHY data rate in bits per second for the given guard interval.
    pub fn data_rate_bps(self, gi: GuardInterval) -> u64 {
        // ndbps bits per symbol_ns nanoseconds.
        self.ndbps() as u64 * 1_000_000_000 / gi.symbol_ns()
    }

    /// PHY data rate in Mbit/s (floating point, for reporting).
    pub fn data_rate_mbps(self, gi: GuardInterval) -> f64 {
        self.data_rate_bps(gi) as f64 / 1e6
    }
}

impl std::fmt::Display for Mcs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MCS{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_long_gi_rates() {
        // The canonical HT20 single-stream table.
        let expect = [6.5, 13.0, 19.5, 26.0, 39.0, 52.0, 58.5, 65.0];
        for (mcs, want) in Mcs::all().zip(expect) {
            let got = mcs.data_rate_mbps(GuardInterval::Long);
            assert!((got - want).abs() < 0.01, "{mcs}: {got} vs {want}");
        }
    }

    #[test]
    fn standard_short_gi_rates() {
        let expect = [7.2, 14.4, 21.7, 28.9, 43.3, 57.8, 65.0, 72.2];
        for (mcs, want) in Mcs::all().zip(expect) {
            let got = mcs.data_rate_mbps(GuardInterval::Short);
            assert!((got - want).abs() < 0.15, "{mcs}: {got} vs {want}");
        }
    }

    #[test]
    fn ndbps_values() {
        let expect = [26, 52, 78, 104, 156, 208, 234, 260];
        for (mcs, want) in Mcs::all().zip(expect) {
            assert_eq!(mcs.ndbps(), want, "{mcs}");
        }
    }

    #[test]
    fn rates_strictly_increase() {
        for gi in [GuardInterval::Long, GuardInterval::Short] {
            let mut prev = 0;
            for mcs in Mcs::all() {
                let r = mcs.data_rate_bps(gi);
                assert!(r > prev);
                prev = r;
            }
        }
    }

    #[test]
    fn up_down_navigation() {
        assert_eq!(Mcs(0).down(), None);
        assert_eq!(Mcs(7).up(), None);
        assert_eq!(Mcs(3).up(), Some(Mcs(4)));
        assert_eq!(Mcs(3).down(), Some(Mcs(2)));
        assert_eq!(Mcs::all().count(), 8);
        assert_eq!(format!("{}", Mcs(5)), "MCS5");
    }

    #[test]
    fn modulations_match_standard() {
        use Modulation::*;
        let expect = [Bpsk, Qpsk, Qpsk, Qam16, Qam16, Qam64, Qam64, Qam64];
        for (mcs, want) in Mcs::all().zip(expect) {
            assert_eq!(mcs.modulation(), want, "{mcs}");
        }
    }
}
