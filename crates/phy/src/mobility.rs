//! Client mobility models.
//!
//! A [`Trajectory`] maps simulated time to a client position and velocity.
//! The paper's experiments need: stationary clients, constant-speed
//! transits past the AP array at 5–35 mph, and the three two-car patterns of
//! Fig 19 (following at 3 m spacing, parallel driving, opposing directions).

use crate::geom::{mph_to_mps, Deployment, Position};
use wgtt_sim::SimTime;

/// A deterministic motion plan for one client.
pub trait Trajectory: Send + Sync {
    /// Client position at time `t`.
    fn position(&self, t: SimTime) -> Position;

    /// Instantaneous speed (m/s) at time `t`; drives the Doppler spread of
    /// the fading process.
    fn speed_mps(&self, t: SimTime) -> f64;

    /// Velocity unit vector at `t` (`None` when stationary).
    fn heading(&self, t: SimTime) -> Option<[f64; 3]>;
}

/// A client that never moves.
#[derive(Debug, Clone)]
pub struct Stationary {
    /// Fixed position.
    pub position: Position,
}

impl Trajectory for Stationary {
    fn position(&self, _t: SimTime) -> Position {
        self.position
    }
    fn speed_mps(&self, _t: SimTime) -> f64 {
        0.0
    }
    fn heading(&self, _t: SimTime) -> Option<[f64; 3]> {
        None
    }
}

/// Constant-velocity motion along the road (the x-axis).
///
/// Positive `speed_mps` drives in +x; negative drives in −x (used for the
/// opposing-direction pattern).
#[derive(Debug, Clone)]
pub struct ConstantSpeed {
    /// Position at `t = 0`.
    pub start: Position,
    /// Signed speed along the x-axis, m/s.
    pub speed_mps: f64,
}

impl ConstantSpeed {
    /// A drive past the given deployment: starts `lead_in_m` before the
    /// first AP, in the near lane, at `mph` miles per hour, antenna height
    /// `z = 1.5 m` (roof-mounted client device).
    pub fn drive_by(deployment: &Deployment, mph: f64, lead_in_m: f64) -> Self {
        let (min_x, _) = deployment.extent();
        ConstantSpeed {
            start: Position::new(min_x - lead_in_m, deployment.lane_near_y, 1.5),
            speed_mps: mph_to_mps(mph),
        }
    }

    /// Same as [`ConstantSpeed::drive_by`] but in the far lane driving the
    /// opposite direction, starting `lead_in_m` beyond the last AP.
    pub fn drive_by_opposing(deployment: &Deployment, mph: f64, lead_in_m: f64) -> Self {
        let (_, max_x) = deployment.extent();
        ConstantSpeed {
            start: Position::new(max_x + lead_in_m, deployment.lane_far_y, 1.5),
            speed_mps: -mph_to_mps(mph),
        }
    }

    /// Time for this trajectory to traverse the full deployment plus lead-in
    /// and lead-out margins — the natural experiment duration.
    pub fn transit_time(&self, deployment: &Deployment, margin_m: f64) -> SimTime {
        let (min_x, max_x) = deployment.extent();
        let total = (max_x - min_x) + 2.0 * margin_m;
        SimTime::from_secs_f64(total / self.speed_mps.abs().max(1e-9))
    }
}

impl Trajectory for ConstantSpeed {
    fn position(&self, t: SimTime) -> Position {
        Position::new(
            self.start.x + self.speed_mps * t.as_secs_f64(),
            self.start.y,
            self.start.z,
        )
    }
    fn speed_mps(&self, _t: SimTime) -> f64 {
        self.speed_mps.abs()
    }
    fn heading(&self, _t: SimTime) -> Option<[f64; 3]> {
        if self.speed_mps == 0.0 {
            None
        } else {
            Some([self.speed_mps.signum(), 0.0, 0.0])
        }
    }
}

/// The two-car driving patterns of the multi-client experiments (Fig 19).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrivePattern {
    /// (a) One car following another at a fixed gap in the same lane.
    Following,
    /// (b) Two cars abreast in adjacent lanes.
    Parallel,
    /// (c) Cars in opposite lanes driving toward each other.
    Opposing,
}

/// Builds the per-client trajectories for a [`DrivePattern`].
///
/// `gap_m` is the bumper gap for the following pattern (paper: 3 m).
pub fn pattern_trajectories(
    pattern: DrivePattern,
    deployment: &Deployment,
    mph: f64,
    gap_m: f64,
) -> Vec<ConstantSpeed> {
    let lead = ConstantSpeed::drive_by(deployment, mph, 10.0);
    match pattern {
        DrivePattern::Following => {
            let mut trail = lead.clone();
            trail.start.x -= gap_m;
            vec![lead, trail]
        }
        DrivePattern::Parallel => {
            let mut beside = lead.clone();
            beside.start.y = deployment.lane_far_y;
            vec![lead, beside]
        }
        DrivePattern::Opposing => {
            let opposing = ConstantSpeed::drive_by_opposing(deployment, mph, 10.0);
            vec![lead, opposing]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::DeploymentConfig;

    #[test]
    fn stationary_stays_put() {
        let s = Stationary {
            position: Position::new(1.0, 2.0, 3.0),
        };
        assert_eq!(s.position(SimTime::from_secs(100)), s.position);
        assert_eq!(s.speed_mps(SimTime::ZERO), 0.0);
        assert!(s.heading(SimTime::ZERO).is_none());
    }

    #[test]
    fn constant_speed_advances_linearly() {
        let c = ConstantSpeed {
            start: Position::new(0.0, 5.0, 1.5),
            speed_mps: 10.0,
        };
        let p = c.position(SimTime::from_millis(2500));
        assert!((p.x - 25.0).abs() < 1e-9);
        assert_eq!(p.y, 5.0);
        assert_eq!(c.heading(SimTime::ZERO), Some([1.0, 0.0, 0.0]));
    }

    #[test]
    fn drive_by_starts_before_array() {
        let d = DeploymentConfig::default().build();
        let c = ConstantSpeed::drive_by(&d, 15.0, 10.0);
        assert!(c.position(SimTime::ZERO).x < d.extent().0);
        assert!(c.speed_mps > 0.0);
        assert_eq!(c.position(SimTime::ZERO).y, d.lane_near_y);
        // 15 mph over 52.5 m + 20 m margins ≈ 10.8 s.
        let t = c.transit_time(&d, 10.0);
        assert!((t.as_secs_f64() - 72.5 / mph_to_mps(15.0)).abs() < 1e-9);
    }

    #[test]
    fn opposing_drives_negative_x() {
        let d = DeploymentConfig::default().build();
        let c = ConstantSpeed::drive_by_opposing(&d, 15.0, 10.0);
        assert!(c.position(SimTime::ZERO).x > d.extent().1);
        let later = c.position(SimTime::from_secs(2));
        assert!(later.x < c.position(SimTime::ZERO).x);
        assert_eq!(c.heading(SimTime::ZERO), Some([-1.0, 0.0, 0.0]));
        // Speed is reported unsigned (it feeds Doppler).
        assert!(c.speed_mps(SimTime::ZERO) > 0.0);
    }

    #[test]
    fn patterns_have_expected_shape() {
        let d = DeploymentConfig::default().build();
        let f = pattern_trajectories(DrivePattern::Following, &d, 15.0, 3.0);
        assert_eq!(f.len(), 2);
        assert!((f[0].start.x - f[1].start.x - 3.0).abs() < 1e-12);
        assert_eq!(f[0].start.y, f[1].start.y);

        let p = pattern_trajectories(DrivePattern::Parallel, &d, 15.0, 3.0);
        assert_eq!(p[0].start.x, p[1].start.x);
        assert_ne!(p[0].start.y, p[1].start.y);

        let o = pattern_trajectories(DrivePattern::Opposing, &d, 15.0, 3.0);
        assert!(o[0].speed_mps > 0.0 && o[1].speed_mps < 0.0);
    }

    #[test]
    fn opposing_cars_separate_over_time() {
        let d = DeploymentConfig::default().build();
        let o = pattern_trajectories(DrivePattern::Opposing, &d, 15.0, 3.0);
        // They approach, meet near the middle, then separate.
        let dist = |t: SimTime| o[0].position(t).distance(&o[1].position(t));
        let t_mid = SimTime::from_secs_f64(72.5 / (2.0 * mph_to_mps(15.0)));
        assert!(dist(t_mid) < dist(SimTime::ZERO));
        assert!(dist(t_mid + wgtt_sim::SimDuration::from_secs(20)) > dist(t_mid));
    }
}
