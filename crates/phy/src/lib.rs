//! # wgtt-phy — the 802.11n physical-layer substrate
//!
//! Everything between "a car is at position x moving at v" and "this frame
//! was delivered / this CSI was measured":
//!
//! * [`geom`] — testbed geometry: the roadside AP array of the paper's
//!   Fig 9, positions, boresights;
//! * [`mobility`] — client trajectories (drive-bys at 5–35 mph, the
//!   two-car patterns of Fig 19);
//! * [`antenna`] — the 14 dBi / 21° parabolic pattern and isotropic
//!   clients;
//! * [`pathloss`] — log-distance large-scale loss and the link budget;
//! * [`fading`] — tapped-delay-line Rician fast fading with Doppler from
//!   vehicle speed: the *vehicular picocell regime* generator;
//! * [`fastmath`] — deterministic in-repo sin/cos/exp kernels so channel
//!   realizations do not depend on the host libm;
//! * [`csi`] — 56-subcarrier channel state snapshots;
//! * [`esnr`] — Effective SNR (Halperin et al.) with exact BER inversion;
//! * [`mcs`] — the HT20 single-stream rate table;
//! * [`error`] — ESNR→PER waterfall model and instantaneous capacity;
//! * [`ratectl`] — Minstrel-style rate adaptation;
//! * [`shadowing`] — optional spatially correlated log-normal shadowing;
//! * [`link`] — the composed per-(AP, client) wireless link.
//!
//! All randomness flows from forked [`wgtt_sim::SimRng`] streams, so every
//! channel trace is reproducible and independent per link.

pub mod antenna;
pub mod complex;
pub mod csi;
pub mod error;
pub mod esnr;
pub mod fading;
pub mod fastmath;
pub mod geom;
pub mod link;
pub mod mcs;
pub mod mobility;
pub mod pathloss;
pub mod ratectl;
pub mod shadowing;

pub use antenna::{Antenna, Isotropic, ParabolicAntenna};
pub use complex::Cplx;
pub use csi::{Csi, NUM_SUBCARRIERS};
pub use error::PerModel;
pub use esnr::{controller_esnr_db, esnr_db, esnr_from_csi, EsnrMemo, Modulation};
pub use fading::{coherence_time_s, doppler_hz, FadingConfig, TappedDelayLine};
pub use geom::{mph_to_mps, mps_to_mph, ApSite, Deployment, DeploymentConfig, Position};
pub use link::{LinkConfig, WirelessLink};
pub use mcs::{GuardInterval, Mcs};
pub use mobility::{pattern_trajectories, ConstantSpeed, DrivePattern, Stationary, Trajectory};
pub use pathloss::{db_to_linear, linear_to_db, LinkBudget, PathLoss};
pub use ratectl::MinstrelLite;
pub use shadowing::{ShadowingConfig, ShadowingProcess};
