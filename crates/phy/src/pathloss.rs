//! Large-scale propagation loss.
//!
//! The slow, distance-driven component of Fig 2's upper plot: free-space
//! loss at a reference distance plus log-distance rolloff, with optional
//! log-normal shadowing. The fast fading that rides on top of this lives in
//! [`crate::fading`].

use serde::{Deserialize, Serialize};

/// Speed of light, m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Log-distance path loss model.
///
/// `PL(d) = FSPL(d0) + 10·n·log10(d/d0)` dB, where `FSPL(d0)` is the
/// free-space loss at the reference distance for the carrier frequency.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PathLoss {
    /// Carrier frequency, Hz (paper: channel 11 ⇒ 2.462 GHz).
    pub carrier_hz: f64,
    /// Path-loss exponent (≈2.0 free space; 2.5–3.0 for a cluttered street
    /// seen through a building face).
    pub exponent: f64,
    /// Reference distance, metres.
    pub ref_distance_m: f64,
}

impl Default for PathLoss {
    fn default() -> Self {
        PathLoss {
            carrier_hz: 2.462e9,
            exponent: 2.7,
            ref_distance_m: 1.0,
        }
    }
}

impl PathLoss {
    /// Carrier wavelength in metres (≈12.2 cm at channel 11).
    pub fn wavelength_m(&self) -> f64 {
        SPEED_OF_LIGHT / self.carrier_hz
    }

    /// Free-space path loss at distance `d` metres, dB.
    pub fn free_space_db(&self, d: f64) -> f64 {
        let d = d.max(0.1);
        20.0 * (4.0 * std::f64::consts::PI * d / self.wavelength_m()).log10()
    }

    /// Total large-scale loss at distance `d` metres, dB.
    pub fn loss_db(&self, d: f64) -> f64 {
        let d = d.max(self.ref_distance_m);
        self.free_space_db(self.ref_distance_m)
            + 10.0 * self.exponent * (d / self.ref_distance_m).log10()
    }
}

/// Link budget: everything between transmit power and mean received SNR.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkBudget {
    /// Transmit power, dBm (TP-Link N750 class AP ≈ 18 dBm after splitter
    /// losses).
    pub tx_power_dbm: f64,
    /// Thermal noise floor for a 20 MHz channel plus receiver noise figure,
    /// dBm (−101 dBm thermal + ~6 dB NF).
    pub noise_floor_dbm: f64,
    /// Fixed implementation losses, dB: RF splitter-combiner (~5 dB),
    /// window penetration (~10 dB), cabling and street clutter margin.
    /// Calibrated so boresight ESNR peaks near 25–27 dB with crossover
    /// zones near 17 dB, matching the paper's Fig 2 traces and 5.2 m cells.
    pub misc_loss_db: f64,
}

impl Default for LinkBudget {
    fn default() -> Self {
        LinkBudget {
            tx_power_dbm: 18.0,
            noise_floor_dbm: -95.0,
            misc_loss_db: 30.0,
        }
    }
}

impl LinkBudget {
    /// Mean (large-scale) SNR in dB given path loss and the two antenna
    /// gains.
    pub fn mean_snr_db(&self, pathloss_db: f64, tx_gain_dbi: f64, rx_gain_dbi: f64) -> f64 {
        self.tx_power_dbm + tx_gain_dbi + rx_gain_dbi
            - pathloss_db
            - self.misc_loss_db
            - self.noise_floor_dbm
    }
}

/// Converts a dB quantity to linear scale.
#[inline]
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear quantity to dB (clamped at −300 dB for zero input).
#[inline]
pub fn linear_to_db(linear: f64) -> f64 {
    if linear <= 1e-30 {
        -300.0
    } else {
        10.0 * linear.log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavelength_at_channel_11() {
        let pl = PathLoss::default();
        // ≈ 12.2 cm — the paper quotes "12 cm at 2.4 GHz".
        assert!((pl.wavelength_m() - 0.1218).abs() < 0.001);
    }

    #[test]
    fn free_space_reference_value() {
        let pl = PathLoss {
            carrier_hz: 2.4e9,
            ..PathLoss::default()
        };
        // Textbook: FSPL(1 m, 2.4 GHz) ≈ 40.05 dB.
        assert!((pl.free_space_db(1.0) - 40.05).abs() < 0.1);
    }

    #[test]
    fn loss_monotone_in_distance() {
        let pl = PathLoss::default();
        let mut prev = pl.loss_db(1.0);
        for d in [2.0, 5.0, 10.0, 20.0, 50.0, 100.0] {
            let l = pl.loss_db(d);
            assert!(l > prev);
            prev = l;
        }
    }

    #[test]
    fn exponent_controls_rolloff() {
        let pl2 = PathLoss {
            exponent: 2.0,
            ..PathLoss::default()
        };
        let pl3 = PathLoss {
            exponent: 3.0,
            ..PathLoss::default()
        };
        // Per decade of distance the difference is 10·Δn dB.
        let d2 = pl2.loss_db(100.0) - pl2.loss_db(10.0);
        let d3 = pl3.loss_db(100.0) - pl3.loss_db(10.0);
        assert!((d2 - 20.0).abs() < 1e-9);
        assert!((d3 - 30.0).abs() < 1e-9);
    }

    #[test]
    fn loss_clamps_below_reference_distance() {
        let pl = PathLoss::default();
        assert_eq!(pl.loss_db(0.0), pl.loss_db(pl.ref_distance_m));
        assert_eq!(pl.loss_db(0.5), pl.loss_db(1.0));
    }

    #[test]
    fn link_budget_snr() {
        let lb = LinkBudget::default();
        // 18 dBm + 14 dBi + 0 dBi − 80 dB − 30 dB − (−95 dBm) = 17 dB.
        let snr = lb.mean_snr_db(80.0, 14.0, 0.0);
        assert!((snr - 17.0).abs() < 1e-12);
    }

    #[test]
    fn realistic_cell_snr() {
        // Sanity: at the boresight patch (≈11.7 m slant range with the
        // 6 m lane) the mean SNR should land in the paper's observed ESNR
        // range (peaks ≈ 25–27 dB, Fig 2); far down the road through the
        // sidelobe floor it should be unusable.
        let pl = PathLoss::default();
        let lb = LinkBudget::default();
        let near = lb.mean_snr_db(pl.loss_db(11.7), 14.0, 0.0);
        let far = lb.mean_snr_db(pl.loss_db(60.0), 14.0 - 25.0, 0.0);
        assert!((22.0..30.0).contains(&near), "near SNR {near}");
        assert!(far < 0.0, "far SNR {far}");
    }

    #[test]
    fn db_linear_roundtrip() {
        for db in [-30.0, -3.0, 0.0, 3.0, 10.0, 25.0] {
            assert!((linear_to_db(db_to_linear(db)) - db).abs() < 1e-9);
        }
        assert_eq!(linear_to_db(0.0), -300.0);
        assert!((db_to_linear(3.0) - 1.9953).abs() < 1e-3);
    }
}
