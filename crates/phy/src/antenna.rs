//! Antenna gain patterns.
//!
//! Each WGTT AP uses a 14 dBi parabolic antenna with a 21° half-power
//! beamwidth (the Laird GD24BP of the paper, §4.2). We model its main lobe
//! with the standard Gaussian-beam approximation — gain falls 3 dB at half
//! the beamwidth and 12 dB at the full beamwidth — and clamp to a sidelobe
//! floor, which is what gives adjacent cells their 6–10 m coverage overlap
//! at reduced SNR (paper Fig 10) and lets neighbour APs overhear uplink
//! traffic for Block-ACK forwarding.

use serde::{Deserialize, Serialize};

/// A transmit/receive antenna gain pattern.
pub trait Antenna: Send + Sync {
    /// Gain in dBi at `off_boresight` radians from the pointing direction.
    fn gain_dbi(&self, off_boresight: f64) -> f64;

    /// Peak (boresight) gain in dBi.
    fn peak_gain_dbi(&self) -> f64 {
        self.gain_dbi(0.0)
    }
}

/// An isotropic radiator (client devices, omni reference cases).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Isotropic {
    /// Flat gain in dBi (0 for ideal isotropic, ~2 for a typical laptop
    /// antenna).
    pub gain_dbi: f64,
}

impl Default for Isotropic {
    fn default() -> Self {
        Isotropic { gain_dbi: 0.0 }
    }
}

impl Antenna for Isotropic {
    fn gain_dbi(&self, _off_boresight: f64) -> f64 {
        self.gain_dbi
    }
}

/// Gaussian main-lobe directional antenna with a sidelobe floor.
///
/// `G(θ) = G_max − 12·(θ/θ_bw)²` dB, clamped below at
/// `G_max + sidelobe_rel_db`. With `θ_bw` equal to the half-power beamwidth,
/// the pattern is 3 dB down at `θ = θ_bw/2` — the textbook parabolic-dish
/// approximation (same form as the 3GPP antenna element model).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ParabolicAntenna {
    /// Boresight gain, dBi (paper: 14 dBi).
    pub peak_gain_dbi: f64,
    /// Half-power (−3 dB) beamwidth in degrees (paper: 21°).
    pub beamwidth_deg: f64,
    /// Sidelobe level relative to peak, dB (negative; typical −20…−30 dB
    /// for a small parabolic).
    pub sidelobe_rel_db: f64,
}

impl Default for ParabolicAntenna {
    fn default() -> Self {
        ParabolicAntenna {
            peak_gain_dbi: 14.0,
            beamwidth_deg: 21.0,
            sidelobe_rel_db: -25.0,
        }
    }
}

impl Antenna for ParabolicAntenna {
    fn gain_dbi(&self, off_boresight: f64) -> f64 {
        let theta_deg = off_boresight.abs().to_degrees();
        let rolloff = 12.0 * (theta_deg / self.beamwidth_deg).powi(2);
        let floor = self.peak_gain_dbi + self.sidelobe_rel_db;
        (self.peak_gain_dbi - rolloff).max(floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isotropic_is_flat() {
        let a = Isotropic { gain_dbi: 2.0 };
        assert_eq!(a.gain_dbi(0.0), 2.0);
        assert_eq!(a.gain_dbi(1.0), 2.0);
        assert_eq!(a.gain_dbi(3.0), 2.0);
        assert_eq!(a.peak_gain_dbi(), 2.0);
        assert_eq!(Isotropic::default().gain_dbi(0.5), 0.0);
    }

    #[test]
    fn parabolic_peak_at_boresight() {
        let a = ParabolicAntenna::default();
        assert_eq!(a.gain_dbi(0.0), 14.0);
        assert_eq!(a.peak_gain_dbi(), 14.0);
    }

    #[test]
    fn parabolic_is_3db_down_at_half_beamwidth() {
        let a = ParabolicAntenna::default();
        let half_bw = (21.0_f64 / 2.0).to_radians();
        assert!((a.gain_dbi(half_bw) - 11.0).abs() < 1e-9);
    }

    #[test]
    fn parabolic_is_12db_down_at_full_beamwidth() {
        let a = ParabolicAntenna::default();
        let bw = 21.0_f64.to_radians();
        assert!((a.gain_dbi(bw) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn parabolic_clamps_to_sidelobe_floor() {
        let a = ParabolicAntenna::default();
        // Far off boresight the gain is the floor, not −∞.
        assert_eq!(a.gain_dbi(std::f64::consts::PI), 14.0 - 25.0);
        assert_eq!(a.gain_dbi(1.5), a.gain_dbi(3.0));
    }

    #[test]
    fn parabolic_is_symmetric_and_monotone() {
        let a = ParabolicAntenna::default();
        assert_eq!(a.gain_dbi(0.3), a.gain_dbi(-0.3));
        let mut prev = a.gain_dbi(0.0);
        for i in 1..=30 {
            let g = a.gain_dbi(i as f64 * 0.02);
            assert!(g <= prev + 1e-12);
            prev = g;
        }
    }
}
