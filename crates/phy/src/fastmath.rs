//! Deterministic transcendental kernels for the physics hot path.
//!
//! The simulator's two hottest computations — the sum-of-sinusoids fading
//! evaluator and the BER/effective-SNR integration — are dominated not by
//! arithmetic but by `libm` calls (`sin`, `cos`, `exp`). Routing them
//! through in-repo kernels buys two things:
//!
//! 1. **Determinism across hosts.** `libm` results for transcendentals are
//!    not specified bit-for-bit and have changed between glibc releases.
//!    Every metric fingerprint the determinism suites pin would silently
//!    depend on the host libc; with these kernels the physics is pure Rust
//!    arithmetic and reproduces bit-identically anywhere.
//! 2. **Throughput.** One fused [`sincos`] halves the call count of the
//!    fading evaluator's `e^{jθ}` phasors, and the kernels inline into
//!    their (non-vectorized but call-free) call sites.
//!
//! The algorithms are the classical fdlibm ones (Cody–Waite argument
//! reduction, minimax polynomial kernels) with accuracy ~1 ulp for [`exp`]
//! and ~2 ulp for [`sincos`] over the argument ranges the simulator uses
//! (|x| < 2²⁰ radians; larger arguments fall back to `std`). That is far
//! tighter than any physical parameter in the model; the channel model is
//! unchanged, only its last-ulp realization differs from libm.

// The constants below are fdlibm's, kept textually faithful to the
// reference implementation: several shadow `std::f64::consts` values or
// carry more digits than f64 resolves, and rewriting them would obscure
// the provenance the kernels' accuracy argument rests on.
#![allow(clippy::approx_constant, clippy::excessive_precision)]

/// 2/π, for quadrant selection.
const INV_PIO2: f64 = 6.366_197_723_675_813_8e-1;
/// First 33 bits of π/2.
const PIO2_1: f64 = 1.570_796_326_734_125_6;
/// Second 33 bits of π/2.
const PIO2_2: f64 = 6.077_100_506_303_966e-11;
/// π/2 − PIO2_1 − PIO2_2, to full precision.
const PIO2_2T: f64 = 2.022_266_248_795_950_6e-21;

// Minimax sine kernel coefficients on [−π/4, π/4] (fdlibm k_sin).
const S1: f64 = -1.666_666_666_666_663_2e-1;
const S2: f64 = 8.333_333_333_322_489e-3;
const S3: f64 = -1.984_126_982_985_795e-4;
const S4: f64 = 2.755_731_370_707_007e-6;
const S5: f64 = -2.505_076_025_340_686_4e-8;
const S6: f64 = 1.589_690_995_211_55e-10;

// Minimax cosine kernel coefficients on [−π/4, π/4] (fdlibm k_cos).
const C1: f64 = 4.166_666_666_666_66e-2;
const C2: f64 = -1.388_888_888_887_411e-3;
const C3: f64 = 2.480_158_728_947_673e-5;
const C4: f64 = -2.755_731_435_139_066_4e-7;
const C5: f64 = 2.087_572_321_298_175e-9;
const C6: f64 = -1.135_964_755_778_819_5e-11;

/// Sine of a kernel-range argument (|r| ≲ π/4).
#[inline]
fn k_sin(r: f64) -> f64 {
    let z = r * r;
    r + r * z * (S1 + z * (S2 + z * (S3 + z * (S4 + z * (S5 + z * S6)))))
}

/// Cosine of a kernel-range argument (|r| ≲ π/4).
#[inline]
fn k_cos(r: f64) -> f64 {
    let z = r * r;
    1.0 - 0.5 * z + z * z * (C1 + z * (C2 + z * (C3 + z * (C4 + z * (C5 + z * C6)))))
}

/// Bound of the Cody–Waite reduction: beyond it precision degrades, so
/// [`sincos`] falls back to `std` (the simulator's phases never get there).
const REDUCTION_BOUND: f64 = 1.0e6;

/// `(sin x, cos x)` with one fused argument reduction.
///
/// Accuracy ~2 ulp for |x| < [`REDUCTION_BOUND`]; exact `std` fallback
/// outside. NaN/∞ propagate as NaN.
#[inline]
pub fn sincos(x: f64) -> (f64, f64) {
    // Negated comparison on purpose: NaN fails `<` and takes the fallback.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(x.abs() < REDUCTION_BOUND) {
        // Huge, NaN or infinite: take libm's argument reduction.
        return (x.sin(), x.cos());
    }
    let fk = (x * INV_PIO2).round();
    // Two-stage Cody–Waite reduction: r = x − k·π/2 to ~2⁻⁷⁰ even after
    // the cancellation a 2²⁰-sized k causes.
    let t = x - fk * PIO2_1;
    let w2 = fk * PIO2_2;
    let r2 = t - w2;
    let w3 = fk * PIO2_2T - ((t - r2) - w2);
    let r = r2 - w3;
    let s = k_sin(r);
    let c = k_cos(r);
    match (fk as i64) & 3 {
        0 => (s, c),
        1 => (c, -s),
        2 => (-s, -c),
        _ => (-c, s),
    }
}

/// `sin x` via [`sincos`].
#[inline]
pub fn sin(x: f64) -> f64 {
    sincos(x).0
}

/// `cos x` via [`sincos`].
#[inline]
pub fn cos(x: f64) -> f64 {
    sincos(x).1
}

/// ln 2, split for exact reduction (fdlibm e_exp).
const LN2_HI: f64 = 6.931_471_803_691_238e-1;
const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
/// 1/ln 2.
const INV_LN2: f64 = 1.442_695_040_888_963_4;

// exp rational-kernel coefficients (fdlibm e_exp).
const P1: f64 = 1.666_666_666_666_660_2e-1;
const P2: f64 = -2.777_777_777_015_593_4e-3;
const P3: f64 = 6.613_756_321_437_934e-5;
const P4: f64 = -1.653_390_220_546_525_2e-6;
const P5: f64 = 4.138_136_797_057_238_4e-8;

/// Smallest argument with a non-zero (subnormal) result.
const EXP_UNDERFLOW: f64 = -745.133_219_101_941_2;
/// Largest argument with a finite result.
const EXP_OVERFLOW: f64 = 709.782_712_893_384;

/// `e^x`, accurate to ~1 ulp, with exact overflow/underflow saturation.
#[inline]
pub fn exp(x: f64) -> f64 {
    if x.is_nan() {
        return x;
    }
    if x > EXP_OVERFLOW {
        return f64::INFINITY;
    }
    if x < EXP_UNDERFLOW {
        return 0.0;
    }
    if x.abs() < 3.725_290_298_461_914e-9 {
        // |x| < 2⁻²⁸: 1 + x already rounds correctly.
        return 1.0 + x;
    }
    let fk = (x * INV_LN2).round();
    let hi = x - fk * LN2_HI;
    let lo = fk * LN2_LO;
    let r = hi - lo;
    let t = r * r;
    let c = r - t * (P1 + t * (P2 + t * (P3 + t * (P4 + t * P5))));
    let y = 1.0 - ((lo - (r * c) / (2.0 - c)) - hi);
    scale_by_pow2(y, fk as i32)
}

// ln mantissa-series coefficients (fdlibm e_log).
const LG1: f64 = 6.666_666_666_666_735e-1;
const LG2: f64 = 3.999_999_999_940_942e-1;
const LG3: f64 = 2.857_142_874_366_239e-1;
const LG4: f64 = 2.222_219_843_214_978_4e-1;
const LG5: f64 = 1.818_357_216_161_805e-1;
const LG6: f64 = 1.531_383_769_920_937_3e-1;
const LG7: f64 = 1.479_819_860_511_658_6e-1;

/// Natural logarithm, accurate to ~1 ulp, defined down to the subnormals.
///
/// `ln 0 = −∞`, negative arguments give NaN, NaN/∞ propagate.
#[inline]
pub fn ln(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    if x == 0.0 {
        return f64::NEG_INFINITY;
    }
    if x < 0.0 {
        return f64::NAN;
    }
    let mut k: i32 = 0;
    let mut x = x;
    if x < f64::MIN_POSITIVE {
        // Subnormal: renormalize exactly by 2⁵⁴.
        x *= 1.801_439_850_948_198_4e16;
        k -= 54;
    }
    let bits = x.to_bits();
    k += ((bits >> 52) as i32 & 0x7ff) - 1023;
    // Mantissa in [1, 2), then fold into [√2/2, √2) so f = m − 1 is small.
    let mut f = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000);
    if f > std::f64::consts::SQRT_2 {
        f *= 0.5;
        k += 1;
    }
    let kf = k as f64;
    let f = f - 1.0;
    let s = f / (2.0 + f);
    let z = s * s;
    let w = z * z;
    let t1 = w * (LG2 + w * (LG4 + w * LG6));
    let t2 = z * (LG1 + w * (LG3 + w * (LG5 + w * LG7)));
    let r = t1 + t2;
    let hfsq = 0.5 * f * f;
    kf * LN2_HI - ((hfsq - (s * (hfsq + r) + kf * LN2_LO)) - f)
}

/// `y · 2^k` via exponent arithmetic, correct into the subnormal range.
#[inline]
fn scale_by_pow2(y: f64, k: i32) -> f64 {
    if k >= -1021 {
        f64::from_bits(y.to_bits().wrapping_add((k as u64) << 52))
    } else {
        // Subnormal result: scale in two hops so the intermediate stays
        // normal.
        let part = f64::from_bits(y.to_bits().wrapping_add(((k + 1000) as u64) << 52));
        part * f64::from_bits((1023u64 - 1000) << 52)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift for test point generation.
    fn xorshift(state: &mut u64) -> f64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        (*state >> 11) as f64 / (1u64 << 53) as f64
    }

    #[test]
    fn sincos_matches_libm_small_args() {
        let mut s = 0x9e3779b97f4a7c15u64;
        for _ in 0..20_000 {
            let x = (xorshift(&mut s) - 0.5) * 20.0;
            let (sn, cs) = sincos(x);
            assert!((sn - x.sin()).abs() < 1e-15, "sin({x})");
            assert!((cs - x.cos()).abs() < 1e-15, "cos({x})");
        }
    }

    #[test]
    fn sincos_matches_libm_fading_phase_range() {
        // Doppler phases: 2π · f_d · t reaches ~10⁵ rad over a long run.
        let mut s = 0x1234_5678_9abc_def1u64;
        for _ in 0..20_000 {
            let x = (xorshift(&mut s) - 0.5) * 4.0e5;
            let (sn, cs) = sincos(x);
            assert!(
                (sn - x.sin()).abs() < 1e-12,
                "sin({x}) = {sn} vs {}",
                x.sin()
            );
            assert!(
                (cs - x.cos()).abs() < 1e-12,
                "cos({x}) = {cs} vs {}",
                x.cos()
            );
        }
    }

    #[test]
    fn sincos_huge_and_nonfinite_fall_back() {
        for x in [1.0e7, -3.0e9, 1.0e18] {
            let (sn, cs) = sincos(x);
            assert_eq!(sn.to_bits(), x.sin().to_bits());
            assert_eq!(cs.to_bits(), x.cos().to_bits());
        }
        let (sn, cs) = sincos(f64::NAN);
        assert!(sn.is_nan() && cs.is_nan());
        let (sn, cs) = sincos(f64::INFINITY);
        assert!(sn.is_nan() && cs.is_nan());
    }

    #[test]
    fn sincos_pythagorean_identity() {
        let mut s = 0xfeed_beef_cafe_f00du64;
        for _ in 0..10_000 {
            let x = (xorshift(&mut s) - 0.5) * 1.0e5;
            let (sn, cs) = sincos(x);
            assert!((sn * sn + cs * cs - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn exp_matches_libm() {
        let mut s = 0xdead_beef_1234_5678u64;
        for _ in 0..20_000 {
            let x = (xorshift(&mut s) - 0.5) * 1400.0;
            let want = x.exp();
            let got = exp(x);
            if want == 0.0 || want.is_infinite() {
                assert_eq!(got, want, "exp({x})");
            } else {
                let rel = ((got - want) / want).abs();
                assert!(rel < 1e-14, "exp({x}) = {got} vs {want}");
            }
        }
    }

    #[test]
    fn exp_special_cases() {
        assert_eq!(exp(0.0), 1.0);
        assert_eq!(exp(f64::INFINITY), f64::INFINITY);
        assert_eq!(exp(f64::NEG_INFINITY), 0.0);
        assert!(exp(f64::NAN).is_nan());
        assert_eq!(exp(710.0), f64::INFINITY);
        assert_eq!(exp(-746.0), 0.0);
        // Deep in the subnormal range the kernel must still agree with libm
        // to a few ulps of the subnormal.
        for x in [-709.0, -720.0, -740.0, -745.0] {
            let want = f64::exp(x);
            let got = exp(x);
            let diff = (got - want).abs();
            assert!(
                diff <= 4.0 * f64::EPSILON * want.max(f64::MIN_POSITIVE),
                "exp({x}): {got} vs {want}"
            );
        }
    }

    #[test]
    fn ln_matches_libm() {
        let mut s = 0x0bad_cafe_dead_f00du64;
        for _ in 0..20_000 {
            // Log-uniform over ~±300 decades, the whole BER range.
            let e = (xorshift(&mut s) - 0.5) * 1380.0;
            let x = f64::exp(e);
            let want = x.ln();
            let got = ln(x);
            assert!(
                (got - want).abs() <= 2.0 * f64::EPSILON * want.abs().max(1.0),
                "ln({x:e}) = {got} vs {want}"
            );
        }
    }

    #[test]
    fn ln_subnormals_and_special_cases() {
        for x in [5e-324f64, 1e-320, 2.2e-308] {
            let want = x.ln();
            let got = ln(x);
            assert!((got - want).abs() < 1e-12 * want.abs(), "ln({x:e})");
        }
        assert_eq!(ln(1.0), 0.0);
        assert_eq!(ln(0.0), f64::NEG_INFINITY);
        assert!(ln(-1.0).is_nan());
        assert!(ln(f64::NAN).is_nan());
        assert_eq!(ln(f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn exp_monotone_near_one() {
        // The |x| < 2⁻²⁸ shortcut must splice monotonically into the kernel.
        let eps = 3.7e-9;
        assert!(exp(-eps) < exp(-eps / 2.0));
        assert!(exp(-eps / 2.0) < 1.0 + 1e-12);
        assert!(exp(eps / 2.0) < exp(eps));
    }
}
