//! Packet error model.
//!
//! Delivery probability is computed in two stages, mirroring how real
//! 802.11n receivers behave on frequency-selective channels:
//!
//! 1. The per-subcarrier SNRs of a CSI snapshot collapse to an *effective
//!    SNR* for the MCS's modulation ([`crate::esnr`]). This step is where
//!    frequency selectivity hurts: one deep notch drags the ESNR down.
//! 2. The ESNR maps to a frame success probability through a per-MCS
//!    logistic "waterfall" centred on the scheme's decoding threshold, with
//!    a reference frame length and the usual `(1−p_bit)^L` length scaling.
//!
//! The thresholds follow the convolutional-coding sensitivity ladder of
//! 802.11 (≈3 dB per MCS step at the bottom, compressing near the top) and
//! are exposed in [`PerModel`] for calibration.

use crate::csi::Csi;
use crate::esnr::{esnr_from_csi, EsnrMemo};
use crate::mcs::Mcs;
use serde::{Deserialize, Serialize};

/// Logistic ESNR→PER model, one threshold per MCS.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerModel {
    /// ESNR (dB) at which a reference-length frame is lost 50% of the time,
    /// indexed by MCS.
    pub threshold_db: [f64; 8],
    /// Logistic steepness: dB of ESNR per e-fold change in odds. Smaller is
    /// steeper; convolutionally coded OFDM waterfalls are ≈0.5 dB wide.
    pub steepness_db: f64,
    /// Frame length the thresholds are calibrated at, bytes.
    pub ref_len_bytes: usize,
}

impl Default for PerModel {
    fn default() -> Self {
        PerModel {
            // 50%-PER thresholds at 1000 B; ~AWGN requirements for
            // BPSK1/2 … 64QAM5/6 with implementation margin.
            threshold_db: [2.0, 5.0, 7.5, 10.5, 14.0, 18.0, 19.5, 21.5],
            steepness_db: 0.6,
            ref_len_bytes: 1000,
        }
    }
}

impl PerModel {
    /// Frame success probability at the given effective SNR (dB, computed
    /// for this MCS's modulation) and frame length.
    pub fn success_prob(&self, mcs: Mcs, esnr_db: f64, len_bytes: usize) -> f64 {
        let t = self.threshold_db[mcs.0 as usize];
        // Success probability of a reference-length frame.
        let x = (esnr_db - t) / self.steepness_db;
        // Numerically safe logistic.
        let p_ref = if x > 40.0 {
            1.0
        } else if x < -40.0 {
            0.0
        } else {
            1.0 / (1.0 + (-x).exp())
        };
        if p_ref <= 0.0 {
            return 0.0;
        }
        if p_ref >= 1.0 {
            return 1.0;
        }
        // Convert to an equivalent per-bit survival and rescale to the
        // actual length.
        let scale = len_bytes.max(1) as f64 / self.ref_len_bytes as f64;
        p_ref.powf(scale)
    }

    /// Frame success probability straight from a CSI snapshot.
    pub fn success_from_csi(&self, mcs: Mcs, csi: &Csi, len_bytes: usize) -> f64 {
        let esnr = esnr_from_csi(mcs.modulation(), csi);
        self.success_prob(mcs, esnr, len_bytes)
    }

    /// [`Self::success_from_csi`] against a memoized snapshot — per-MPDU
    /// delivery draws in an A-MPDU burst share one ESNR integration.
    pub fn success_with(&self, esnr: &mut EsnrMemo, mcs: Mcs, len_bytes: usize) -> f64 {
        let e = esnr.esnr_db(mcs.modulation());
        self.success_prob(mcs, e, len_bytes)
    }

    /// Expected goodput (bit/s) for a frame of `len_bytes` at `esnr_db`:
    /// `rate · P(success)`. Used by rate control and by "capacity"
    /// computations in the experiments.
    pub fn expected_goodput_bps(
        &self,
        mcs: Mcs,
        gi: crate::mcs::GuardInterval,
        esnr_db_for_mod: f64,
        len_bytes: usize,
    ) -> f64 {
        mcs.data_rate_bps(gi) as f64 * self.success_prob(mcs, esnr_db_for_mod, len_bytes)
    }

    /// The instantaneous link capacity (bit/s): best over MCS of expected
    /// goodput, given a CSI snapshot. This is the paper's notion of the
    /// "channel capacity" an AP could deliver at an instant (Figs 2, 4, 21).
    ///
    /// The eight MCSs share four modulations, so the memoized path runs
    /// four ESNR integrations instead of eight — bit-identical to
    /// [`Self::capacity_bps_ref`] (locked by `memoized_paths_match_ref`).
    pub fn capacity_bps(&self, gi: crate::mcs::GuardInterval, csi: &Csi, len_bytes: usize) -> f64 {
        self.capacity_with(&mut EsnrMemo::new(csi), gi, len_bytes)
    }

    /// [`Self::capacity_bps`] against a caller-held memo (reuses ESNRs the
    /// caller already computed for ranking, e.g. the oracle sampler).
    pub fn capacity_with(
        &self,
        esnr: &mut EsnrMemo,
        gi: crate::mcs::GuardInterval,
        len_bytes: usize,
    ) -> f64 {
        // Densest MCS first: at healthy SNR its expected goodput already
        // exceeds every slower MCS's ceiling (`rate × 1`, since the success
        // probability never exceeds 1), so those integrations are skipped.
        // Bit-identical to folding over all eight: a skipped MCS cannot
        // raise the max, and `f64::max` over non-NaN values is
        // order-independent.
        let mut best = 0.0f64;
        for m in Mcs::all().rev() {
            if (m.data_rate_bps(gi) as f64) <= best {
                continue;
            }
            let e = esnr.esnr_db(m.modulation());
            best = best.max(self.expected_goodput_bps(m, gi, e, len_bytes));
        }
        best
    }

    /// Pre-memoization reference implementation of [`Self::capacity_bps`]:
    /// one full ESNR integration per MCS. Kept as the equivalence oracle
    /// and as the baseline the `perf` harness measures the memoized path
    /// against (`BENCH.json` `esnr_hotpath` section).
    pub fn capacity_bps_ref(
        &self,
        gi: crate::mcs::GuardInterval,
        csi: &Csi,
        len_bytes: usize,
    ) -> f64 {
        Mcs::all()
            .map(|m| {
                let e = esnr_from_csi(m.modulation(), csi);
                self.expected_goodput_bps(m, gi, e, len_bytes)
            })
            .fold(0.0, f64::max)
    }

    /// Best MCS for a CSI snapshot (argmax of expected goodput) — an oracle
    /// rate choice used in tests and as a reference for rate control.
    pub fn best_mcs(&self, gi: crate::mcs::GuardInterval, csi: &Csi, len_bytes: usize) -> Mcs {
        let mut esnr = EsnrMemo::new(csi);
        Mcs::all()
            .max_by(|a, b| {
                let ea = esnr.esnr_db(a.modulation());
                let eb = esnr.esnr_db(b.modulation());
                self.expected_goodput_bps(*a, gi, ea, len_bytes)
                    .partial_cmp(&self.expected_goodput_bps(*b, gi, eb, len_bytes))
                    .expect("goodput is not NaN")
            })
            .expect("MCS set is non-empty")
    }

    /// Pre-memoization reference for [`Self::best_mcs`] (equivalence
    /// oracle; see [`Self::capacity_bps_ref`]).
    pub fn best_mcs_ref(&self, gi: crate::mcs::GuardInterval, csi: &Csi, len_bytes: usize) -> Mcs {
        Mcs::all()
            .max_by(|a, b| {
                let ea = esnr_from_csi(a.modulation(), csi);
                let eb = esnr_from_csi(b.modulation(), csi);
                self.expected_goodput_bps(*a, gi, ea, len_bytes)
                    .partial_cmp(&self.expected_goodput_bps(*b, gi, eb, len_bytes))
                    .expect("goodput is not NaN")
            })
            .expect("MCS set is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Cplx;
    use crate::csi::NUM_SUBCARRIERS;
    use crate::mcs::GuardInterval;

    fn flat_csi(snr_db: f64) -> Csi {
        Csi {
            h: [Cplx::ONE; NUM_SUBCARRIERS],
            mean_snr_db: snr_db,
        }
    }

    #[test]
    fn success_at_threshold_is_half() {
        let m = PerModel::default();
        for mcs in Mcs::all() {
            let t = m.threshold_db[mcs.0 as usize];
            let p = m.success_prob(mcs, t, m.ref_len_bytes);
            assert!((p - 0.5).abs() < 1e-9, "{mcs}: {p}");
        }
    }

    #[test]
    fn success_monotone_in_esnr() {
        let m = PerModel::default();
        let mut prev = 0.0;
        for db in [0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0] {
            let p = m.success_prob(Mcs(4), db, 1000);
            assert!(p >= prev);
            prev = p;
        }
        assert!(m.success_prob(Mcs(4), 30.0, 1000) > 0.999);
        assert!(m.success_prob(Mcs(4), 0.0, 1000) < 0.001);
    }

    #[test]
    fn longer_frames_fail_more() {
        let m = PerModel::default();
        let at = m.threshold_db[3] + 1.0;
        let short = m.success_prob(Mcs(3), at, 100);
        let long = m.success_prob(Mcs(3), at, 4000);
        assert!(short > long, "{short} vs {long}");
        // Extremes saturate cleanly.
        assert_eq!(m.success_prob(Mcs(3), 100.0, 65536), 1.0);
        assert_eq!(m.success_prob(Mcs(3), -100.0, 1), 0.0);
    }

    #[test]
    fn high_snr_prefers_high_mcs() {
        let m = PerModel::default();
        let csi = flat_csi(30.0);
        assert_eq!(m.best_mcs(GuardInterval::Short, &csi, 1500), Mcs(7));
    }

    #[test]
    fn low_snr_prefers_low_mcs() {
        let m = PerModel::default();
        let csi = flat_csi(5.0);
        let best = m.best_mcs(GuardInterval::Short, &csi, 1500);
        assert!(best <= Mcs(1), "picked {best}");
    }

    #[test]
    fn capacity_tracks_snr() {
        let m = PerModel::default();
        let gi = GuardInterval::Short;
        let low = m.capacity_bps(gi, &flat_csi(6.0), 1500);
        let mid = m.capacity_bps(gi, &flat_csi(15.0), 1500);
        let high = m.capacity_bps(gi, &flat_csi(30.0), 1500);
        assert!(low < mid && mid < high);
        // At 30 dB flat, capacity is the full MCS7 SGI rate.
        assert!((high - 72.2e6).abs() / 72.2e6 < 0.01, "high {high}");
        // Hopeless channel: zero capacity.
        assert!(m.capacity_bps(gi, &flat_csi(-20.0), 1500) < 1.0);
    }

    #[test]
    fn success_from_csi_penalizes_notches() {
        let m = PerModel::default();
        let flat = flat_csi(16.0);
        let mut notched = flat.clone();
        for i in 0..8 {
            notched.h[i] = Cplx::new(0.03, 0.0); // deep fade on 8 subcarriers
        }
        let p_flat = m.success_from_csi(Mcs(4), &flat, 1500);
        let p_notch = m.success_from_csi(Mcs(4), &notched, 1500);
        assert!(p_flat > 0.9, "{p_flat}");
        assert!(p_notch < p_flat * 0.7, "{p_notch} vs {p_flat}");
    }

    #[test]
    fn expected_goodput_shape() {
        let m = PerModel::default();
        let gi = GuardInterval::Long;
        // Well above threshold the goodput is the PHY rate.
        let g = m.expected_goodput_bps(Mcs(7), gi, 40.0, 1500);
        assert!((g - 65e6).abs() < 1e4);
        // Below threshold it collapses.
        assert!(m.expected_goodput_bps(Mcs(7), gi, 10.0, 1500) < 1e3);
    }
}
