//! Spatially correlated log-normal shadowing (optional).
//!
//! Large obstacles — parked trucks, street furniture, foliage — impose
//! slowly varying gain offsets on top of distance loss. The classic model
//! (Gudmundson) is log-normal shadowing whose autocorrelation decays
//! exponentially with distance. We synthesize it with a sum of spatial
//! sinusoids over the along-road coordinate, which gives a deterministic,
//! seedable, smooth process with a controllable correlation length —
//! exactly analogous to the temporal sum-of-sinusoids used for fast fading.
//!
//! Shadowing is **off by default** (σ = 0): the paper's testbed calibration
//! in this reproduction is done without it, and it exists as a sensitivity
//! knob for robustness studies.

use serde::{Deserialize, Serialize};
use wgtt_sim::SimRng;

/// Shadowing process parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ShadowingConfig {
    /// Standard deviation of the gain offset, dB. 0 disables shadowing.
    pub sigma_db: f64,
    /// Correlation length, metres (Gudmundson outdoor ≈ 10–50 m; street
    /// furniture scale ≈ 5 m).
    pub correlation_m: f64,
    /// Number of spatial sinusoids.
    pub num_components: usize,
}

impl Default for ShadowingConfig {
    fn default() -> Self {
        ShadowingConfig {
            sigma_db: 0.0,
            correlation_m: 8.0,
            num_components: 24,
        }
    }
}

#[derive(Debug, Clone)]
struct Component {
    /// Spatial angular frequency, rad/m.
    k: f64,
    /// Phase.
    phase: f64,
}

/// A frozen shadowing realization along the road for one link.
#[derive(Debug, Clone)]
pub struct ShadowingProcess {
    sigma_db: f64,
    components: Vec<Component>,
}

impl ShadowingProcess {
    /// Draws a realization. With `sigma_db == 0` the process is identically
    /// zero (and cheap).
    pub fn new(cfg: &ShadowingConfig, rng: &mut SimRng) -> Self {
        if cfg.sigma_db <= 0.0 {
            return ShadowingProcess {
                sigma_db: 0.0,
                components: Vec::new(),
            };
        }
        assert!(cfg.correlation_m > 0.0);
        assert!(cfg.num_components >= 4);
        // Spatial frequencies spread log-uniformly around the correlation
        // scale: wavelengths from ~corr/2 to ~8·corr.
        let components = (0..cfg.num_components)
            .map(|_| {
                let u = rng.unit();
                let wavelength = cfg.correlation_m * 0.5 * (16f64).powf(u);
                Component {
                    k: 2.0 * std::f64::consts::PI / wavelength,
                    phase: rng.phase(),
                }
            })
            .collect();
        ShadowingProcess {
            sigma_db: cfg.sigma_db,
            components,
        }
    }

    /// Shadowing gain offset (dB) at along-road coordinate `x_m`.
    pub fn offset_db(&self, x_m: f64) -> f64 {
        if self.components.is_empty() {
            return 0.0;
        }
        let n = self.components.len() as f64;
        let sum: f64 = self
            .components
            .iter()
            .map(|c| (c.k * x_m + c.phase).cos())
            .sum();
        self.sigma_db * (2.0 / n).sqrt() * sum
    }

    /// Whether the process is active.
    pub fn is_enabled(&self) -> bool {
        self.sigma_db > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn process(sigma: f64, seed: u64) -> ShadowingProcess {
        let cfg = ShadowingConfig {
            sigma_db: sigma,
            ..ShadowingConfig::default()
        };
        ShadowingProcess::new(&cfg, &mut SimRng::new(seed))
    }

    #[test]
    fn disabled_by_default_and_zero() {
        let p = ShadowingProcess::new(&ShadowingConfig::default(), &mut SimRng::new(1));
        assert!(!p.is_enabled());
        for x in [-50.0, 0.0, 13.7, 500.0] {
            assert_eq!(p.offset_db(x), 0.0);
        }
    }

    #[test]
    fn statistics_match_sigma() {
        let p = process(4.0, 2);
        let samples: Vec<f64> = (0..20_000).map(|i| p.offset_db(i as f64 * 0.37)).collect();
        let mean = wgtt_sim::stats::mean(&samples);
        let std = wgtt_sim::stats::std_dev(&samples);
        assert!(mean.abs() < 0.5, "mean {mean}");
        assert!((std - 4.0).abs() < 1.0, "std {std}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = process(3.0, 7);
        let b = process(3.0, 7);
        let c = process(3.0, 8);
        assert_eq!(a.offset_db(12.3), b.offset_db(12.3));
        assert_ne!(a.offset_db(12.3), c.offset_db(12.3));
    }

    #[test]
    fn spatially_correlated() {
        // Nearby points move together; distant points decorrelate.
        let p = process(4.0, 3);
        let mut near_diff = 0.0;
        let mut far_diff = 0.0;
        let n = 500;
        for i in 0..n {
            let x = i as f64 * 1.7;
            let v = p.offset_db(x);
            near_diff += (p.offset_db(x + 0.5) - v).abs();
            far_diff += (p.offset_db(x + 60.0) - v).abs();
        }
        assert!(
            near_diff * 3.0 < far_diff,
            "near {near_diff} vs far {far_diff}"
        );
    }

    #[test]
    fn smooth_at_sub_metre_scale() {
        let p = process(4.0, 5);
        for i in 0..200 {
            let x = i as f64 * 0.9;
            let d = (p.offset_db(x + 0.1) - p.offset_db(x)).abs();
            assert!(d < 1.0, "jump of {d} dB over 10 cm at x={x}");
        }
    }
}
