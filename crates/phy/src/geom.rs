//! Testbed geometry: positions, the roadside AP array, and the road itself.
//!
//! The paper's deployment (Fig 9) places eight APs on the third floor of an
//! office building overlooking a side road, spaced 7.5 m apart, each with a
//! directional antenna aimed at its patch of road. We model the world in a
//! right-handed coordinate frame:
//!
//! * `x` — distance **along** the road (metres),
//! * `y` — distance **across** the road, away from the building,
//! * `z` — height above road level.
//!
//! Cars drive parallel to the x-axis in lanes of constant `y`.

use serde::{Deserialize, Serialize};

/// A point in the 3-D world frame (metres).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Position {
    /// Along-road coordinate.
    pub x: f64,
    /// Across-road coordinate.
    pub y: f64,
    /// Height.
    pub z: f64,
}

impl Position {
    /// Constructs a position.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Position { x, y, z }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// Unit vector from `self` toward `other`. Returns `None` if the two
    /// points coincide.
    pub fn direction_to(&self, other: &Position) -> Option<[f64; 3]> {
        let d = self.distance(other);
        if d < 1e-9 {
            return None;
        }
        Some([
            (other.x - self.x) / d,
            (other.y - self.y) / d,
            (other.z - self.z) / d,
        ])
    }

    /// Angle (radians) at `self` between directions to `a` and to `b`.
    /// Returns `0.0` if either direction is degenerate.
    pub fn angle_between(&self, a: &Position, b: &Position) -> f64 {
        match (self.direction_to(a), self.direction_to(b)) {
            (Some(u), Some(v)) => {
                let dot = u[0] * v[0] + u[1] * v[1] + u[2] * v[2];
                dot.clamp(-1.0, 1.0).acos()
            }
            _ => 0.0,
        }
    }
}

/// One AP site: where the radio is and where its antenna boresight points.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApSite {
    /// Antenna location.
    pub position: Position,
    /// A point the boresight passes through (typically the AP's patch of
    /// road); the off-boresight angle toward a client is measured against
    /// the `position → boresight_target` ray.
    pub boresight_target: Position,
}

impl ApSite {
    /// Off-boresight angle (radians) from this AP toward `client`.
    pub fn off_boresight(&self, client: &Position) -> f64 {
        self.position.angle_between(&self.boresight_target, client)
    }

    /// Distance from the antenna to `client`.
    pub fn distance_to(&self, client: &Position) -> f64 {
        self.position.distance(client)
    }
}

/// The roadside deployment: AP sites plus road reference geometry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Deployment {
    /// AP sites, ordered along the road (index = AP id).
    pub aps: Vec<ApSite>,
    /// `y` coordinate of the near traffic lane.
    pub lane_near_y: f64,
    /// `y` coordinate of the far traffic lane (for opposing-direction
    /// experiments).
    pub lane_far_y: f64,
}

/// Parameters for the paper's regular eight-AP roadside array.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeploymentConfig {
    /// Number of AP sites.
    pub num_aps: usize,
    /// Spacing between adjacent APs along the road (paper: 7.5 m).
    pub ap_spacing_m: f64,
    /// AP mounting height (third floor ≈ 10 m).
    pub ap_height_m: f64,
    /// Lateral distance from the building face to the near lane.
    pub lane_near_y_m: f64,
    /// Lateral distance to the far lane.
    pub lane_far_y_m: f64,
    /// Along-road position of AP 0.
    pub first_ap_x_m: f64,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig {
            num_aps: 8,
            ap_spacing_m: 7.5,
            ap_height_m: 10.0,
            lane_near_y_m: 6.0,
            lane_far_y_m: 10.0,
            first_ap_x_m: 0.0,
        }
    }
}

impl DeploymentConfig {
    /// Builds the deployment: APs on the building face (`y = 0`) at height,
    /// each aimed at the patch of near-lane road directly opposite it.
    pub fn build(&self) -> Deployment {
        let aps = (0..self.num_aps)
            .map(|i| {
                let x = self.first_ap_x_m + i as f64 * self.ap_spacing_m;
                ApSite {
                    position: Position::new(x, 0.0, self.ap_height_m),
                    boresight_target: Position::new(x, self.lane_near_y_m, 0.0),
                }
            })
            .collect();
        Deployment {
            aps,
            lane_near_y: self.lane_near_y_m,
            lane_far_y: self.lane_far_y_m,
        }
    }

    /// Builds a deployment with *irregular* spacing — used by the AP-density
    /// experiment (Fig 23), which compares a sparse and a dense segment.
    /// `spacings_m[i]` is the gap between AP `i` and AP `i+1`.
    pub fn build_irregular(&self, spacings_m: &[f64]) -> Deployment {
        let mut x = self.first_ap_x_m;
        let mut aps = Vec::with_capacity(spacings_m.len() + 1);
        for i in 0..=spacings_m.len() {
            aps.push(ApSite {
                position: Position::new(x, 0.0, self.ap_height_m),
                boresight_target: Position::new(x, self.lane_near_y_m, 0.0),
            });
            if i < spacings_m.len() {
                x += spacings_m[i];
            }
        }
        Deployment {
            aps,
            lane_near_y: self.lane_near_y_m,
            lane_far_y: self.lane_far_y_m,
        }
    }
}

impl Deployment {
    /// Along-road extent `(min_x, max_x)` covered by the AP array.
    pub fn extent(&self) -> (f64, f64) {
        let xs: Vec<f64> = self.aps.iter().map(|a| a.position.x).collect();
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        (min, max)
    }

    /// Number of AP sites.
    pub fn num_aps(&self) -> usize {
        self.aps.len()
    }
}

/// Converts miles per hour to metres per second.
pub fn mph_to_mps(mph: f64) -> f64 {
    mph * 0.44704
}

/// Converts metres per second to miles per hour.
pub fn mps_to_mph(mps: f64) -> f64 {
    mps / 0.44704
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_3d() {
        let a = Position::new(0.0, 0.0, 0.0);
        let b = Position::new(3.0, 4.0, 12.0);
        assert!((a.distance(&b) - 13.0).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn direction_and_angle() {
        let o = Position::new(0.0, 0.0, 0.0);
        let px = Position::new(5.0, 0.0, 0.0);
        let py = Position::new(0.0, 2.0, 0.0);
        let d = o.direction_to(&px).unwrap();
        assert!((d[0] - 1.0).abs() < 1e-12 && d[1].abs() < 1e-12);
        assert!((o.angle_between(&px, &py) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!(o.direction_to(&o).is_none());
        // Degenerate angle is 0.
        assert_eq!(o.angle_between(&o, &px), 0.0);
    }

    #[test]
    fn default_deployment_matches_paper() {
        let d = DeploymentConfig::default().build();
        assert_eq!(d.num_aps(), 8);
        // 7.5 m spacing.
        let gap = d.aps[1].position.x - d.aps[0].position.x;
        assert!((gap - 7.5).abs() < 1e-12);
        let (lo, hi) = d.extent();
        assert!((hi - lo - 52.5).abs() < 1e-12);
        // Boresight points down at the road: off-boresight angle at the
        // aimed patch is zero.
        let aimed = d.aps[3].boresight_target;
        assert!(d.aps[3].off_boresight(&aimed) < 1e-6);
    }

    #[test]
    fn off_boresight_grows_along_road() {
        let d = DeploymentConfig::default().build();
        let ap = &d.aps[0];
        let on_axis = Position::new(ap.position.x, d.lane_near_y, 0.0);
        let off_axis = Position::new(ap.position.x + 10.0, d.lane_near_y, 0.0);
        assert!(ap.off_boresight(&off_axis) > ap.off_boresight(&on_axis));
    }

    #[test]
    fn irregular_deployment() {
        let cfg = DeploymentConfig::default();
        let d = cfg.build_irregular(&[5.0, 5.0, 15.0, 15.0]);
        assert_eq!(d.num_aps(), 5);
        let xs: Vec<f64> = d.aps.iter().map(|a| a.position.x).collect();
        assert_eq!(xs, vec![0.0, 5.0, 10.0, 25.0, 40.0]);
    }

    #[test]
    fn mph_conversion_roundtrip() {
        for mph in [5.0, 15.0, 25.0, 35.0] {
            assert!((mps_to_mph(mph_to_mps(mph)) - mph).abs() < 1e-12);
        }
        // 25 mph ≈ 11.2 m/s: the paper's 460 ms dwell in a 5.2 m cell.
        let v = mph_to_mps(25.0);
        assert!((5.2 / v - 0.465).abs() < 0.01);
    }
}
