//! One wireless link: AP site ⇄ client, end to end.
//!
//! [`WirelessLink`] composes the whole physical chain — geometry, antenna
//! pattern, path loss, link budget, and a dedicated fading realization —
//! into the two queries the upper layers actually ask:
//!
//! * *what CSI would a frame observe right now?* ([`WirelessLink::csi`]),
//! * *would this frame get through?* (success probability via
//!   [`crate::error::PerModel`]).
//!
//! Reciprocity: the same channel realization serves both directions, which
//! is physically sound for TDD operation on one frequency and is exactly
//! the premise WGTT relies on — CSI measured from client *uplink* frames
//! predicts *downlink* delivery (§3.1.1 of the paper).

use crate::antenna::{Antenna, ParabolicAntenna};
use crate::complex::Cplx;
use crate::csi::{subcarrier_offsets_hz, Csi};
use crate::fading::{doppler_hz, FadingConfig, TappedDelayLine};
use crate::geom::{ApSite, Position};
use crate::pathloss::{LinkBudget, PathLoss};
use crate::shadowing::{ShadowingConfig, ShadowingProcess};
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use wgtt_sim::{SimRng, SimTime};

/// Static configuration shared by all links in a deployment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Large-scale propagation model.
    pub pathloss: PathLoss,
    /// Power/noise budget.
    pub budget: LinkBudget,
    /// Fast-fading process parameters.
    pub fading: FadingConfig,
    /// AP antenna (directional in the paper's testbed).
    pub ap_antenna: ParabolicAntenna,
    /// Client antenna gain, dBi (laptop ≈ 0–2 dBi).
    pub client_antenna_dbi: f64,
    /// Optional spatially correlated shadowing (σ = 0 disables it).
    pub shadowing: ShadowingConfig,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            pathloss: PathLoss::default(),
            budget: LinkBudget::default(),
            fading: FadingConfig::default(),
            ap_antenna: ParabolicAntenna::default(),
            client_antenna_dbi: 0.0,
            shadowing: ShadowingConfig::default(),
        }
    }
}

/// Memoized large-scale SNR for one exact client position (f64 bit
/// patterns). Geometry, path loss, antenna gain, and shadowing depend only
/// on position, and the upper layers query the same position many times per
/// event (per-MPDU delivery, monitor sweeps, oracle sampling) before the
/// client moves — so a one-slot cache absorbs almost every repeat. Keying
/// on exact bits keeps the cached path bit-identical to the uncached one.
#[derive(Debug, Clone, Copy)]
struct GeoCache {
    x_bits: u64,
    y_bits: u64,
    z_bits: u64,
    snr_db: f64,
}

/// Memoized CSI snapshot for one exact `(time, position, speed)` query
/// (f64/ns bit patterns). A single transmission event asks for the same
/// snapshot several times (delivery draws, monitor sweep, rate control)
/// before the clock advances, so a one-slot cache absorbs the repeats
/// without any invalidation protocol — the [`GeoCache`] idiom extended to
/// the fading chain.
#[derive(Debug, Clone)]
struct CsiCache {
    t_ns: u64,
    x_bits: u64,
    y_bits: u64,
    z_bits: u64,
    speed_bits: u64,
    csi: Csi,
}

/// The live channel between one AP site and one client.
#[derive(Debug, Clone)]
pub struct WirelessLink {
    ap: ApSite,
    cfg: LinkConfig,
    fading: TappedDelayLine,
    shadowing: ShadowingProcess,
    subcarriers: [f64; crate::csi::NUM_SUBCARRIERS],
    /// Tap × subcarrier twiddle matrix (fixed per realization) feeding the
    /// allocation-free [`TappedDelayLine::freq_response_into`] path.
    twiddles: Vec<Cplx>,
    /// Static ceiling of any tone's SNR over the mean, in dB (see
    /// [`Self::peak_tone_headroom_db`]).
    peak_tone_headroom_db: f64,
    geo: Cell<Option<GeoCache>>,
    csi_memo: RefCell<Option<CsiCache>>,
}

impl WirelessLink {
    /// Creates a link with its own fading realization drawn from `rng`.
    ///
    /// Callers should fork `rng` per (AP, client) pair so channel
    /// realizations are independent and stable (see [`SimRng::fork`]).
    pub fn new(ap: ApSite, cfg: LinkConfig, rng: &mut SimRng) -> Self {
        let fading = TappedDelayLine::new(&cfg.fading, rng);
        let shadowing = ShadowingProcess::new(&cfg.shadowing, rng);
        let subcarriers = subcarrier_offsets_hz();
        let twiddles = fading.twiddles(&subcarriers);
        // 1 µdB of slack swamps every rounding step in the bound's
        // derivation while staying far below physical significance.
        let peak_tone_headroom_db = 20.0 * fading.peak_gain_bound().log10() + 1e-6;
        WirelessLink {
            ap,
            cfg,
            fading,
            shadowing,
            subcarriers,
            twiddles,
            peak_tone_headroom_db,
            geo: Cell::new(None),
            csi_memo: RefCell::new(None),
        }
    }

    /// Conservative dB headroom of any tone over the mean SNR: no fading
    /// realization can lift a subcarrier's SNR above
    /// `mean_snr_db + headroom` (see
    /// [`TappedDelayLine::peak_gain_bound`]). Static per link.
    pub fn peak_tone_headroom_db(&self) -> f64 {
        self.peak_tone_headroom_db
    }

    /// The AP site of this link.
    pub fn ap_site(&self) -> &ApSite {
        &self.ap
    }

    /// Large-scale (no fast fading) SNR in dB toward a client position,
    /// including the shadowing offset when enabled.
    ///
    /// Memoized for the last queried position (exact f64 bits), so repeat
    /// queries between client moves skip the geometry/path-loss/antenna
    /// chain. Bit-identical to [`Self::mean_snr_db_uncached`].
    pub fn mean_snr_db(&self, client: &Position) -> f64 {
        let (xb, yb, zb) = (client.x.to_bits(), client.y.to_bits(), client.z.to_bits());
        if let Some(c) = self.geo.get() {
            if c.x_bits == xb && c.y_bits == yb && c.z_bits == zb {
                return c.snr_db;
            }
        }
        let snr_db = self.mean_snr_db_uncached(client);
        self.geo.set(Some(GeoCache {
            x_bits: xb,
            y_bits: yb,
            z_bits: zb,
            snr_db,
        }));
        snr_db
    }

    /// [`Self::mean_snr_db`] without the position memo — the reference the
    /// cache is checked against, and the baseline for the `perf` harness.
    pub fn mean_snr_db_uncached(&self, client: &Position) -> f64 {
        let d = self.ap.distance_to(client);
        let theta = self.ap.off_boresight(client);
        let pl = self.cfg.pathloss.loss_db(d);
        self.cfg.budget.mean_snr_db(
            pl,
            self.cfg.ap_antenna.gain_dbi(theta),
            self.cfg.client_antenna_dbi,
        ) + self.shadowing.offset_db(client.x)
    }

    /// Full CSI snapshot at time `t` for a client at `client` moving at
    /// `speed_mps`.
    ///
    /// Memoized for the last exact query (time in ns, position/speed f64
    /// bits) and computed through the precomputed-twiddle fading path —
    /// both bit-identical to [`Self::csi_uncached`], locked by
    /// `csi_cache_is_bit_exact`. The fading realization draws no RNG after
    /// construction, so caching cannot perturb any draw sequence.
    pub fn csi(&self, t: SimTime, client: &Position, speed_mps: f64) -> Csi {
        let key = (
            t.as_nanos(),
            client.x.to_bits(),
            client.y.to_bits(),
            client.z.to_bits(),
            speed_mps.to_bits(),
        );
        if let Some(c) = self.csi_memo.borrow().as_ref() {
            if (c.t_ns, c.x_bits, c.y_bits, c.z_bits, c.speed_bits) == key {
                return c.csi.clone();
            }
        }
        let fd = doppler_hz(speed_mps, self.cfg.pathloss.wavelength_m());
        let mut h = [Cplx::ZERO; crate::csi::NUM_SUBCARRIERS];
        self.fading
            .freq_response_into(t.as_secs_f64(), fd, &self.twiddles, &mut h);
        let csi = Csi {
            h,
            mean_snr_db: self.mean_snr_db(client),
        };
        *self.csi_memo.borrow_mut() = Some(CsiCache {
            t_ns: key.0,
            x_bits: key.1,
            y_bits: key.2,
            z_bits: key.3,
            speed_bits: key.4,
            csi: csi.clone(),
        });
        csi
    }

    /// [`Self::csi`] without the snapshot memo or twiddle precompute — the
    /// reference path the cache is checked against, and the baseline for
    /// the `perf` harness.
    pub fn csi_uncached(&self, t: SimTime, client: &Position, speed_mps: f64) -> Csi {
        let fd = doppler_hz(speed_mps, self.cfg.pathloss.wavelength_m());
        let hv = self
            .fading
            .freq_response(t.as_secs_f64(), fd, &self.subcarriers);
        let mut h = [Cplx::ZERO; crate::csi::NUM_SUBCARRIERS];
        h.copy_from_slice(&hv);
        Csi {
            h,
            mean_snr_db: self.mean_snr_db_uncached(client),
        }
    }

    /// Carrier wavelength (for Doppler computations elsewhere).
    pub fn wavelength_m(&self) -> f64 {
        self.cfg.pathloss.wavelength_m()
    }

    /// Whether a client at `client` can carrier-sense / decode preambles
    /// from this AP at all: mean SNR above the given floor (dB). Used for
    /// "in communication range" checks.
    pub fn in_range(&self, client: &Position, floor_db: f64) -> bool {
        self.mean_snr_db(client) >= floor_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::PerModel;
    use crate::esnr::controller_esnr_db;
    use crate::geom::DeploymentConfig;
    use crate::mcs::GuardInterval;

    fn testbed_links(seed: u64) -> Vec<WirelessLink> {
        let dep = DeploymentConfig::default().build();
        let root = SimRng::new(seed);
        dep.aps
            .iter()
            .enumerate()
            .map(|(i, ap)| {
                let mut r = root.fork_indexed("link", i as u64);
                WirelessLink::new(*ap, LinkConfig::default(), &mut r)
            })
            .collect()
    }

    fn road_pos(x: f64) -> Position {
        Position::new(x, 6.0, 1.5)
    }

    #[test]
    fn snr_peaks_at_boresight_patch() {
        let links = testbed_links(1);
        let ap3 = &links[3];
        let ap_x = ap3.ap_site().position.x;
        let at_patch = ap3.mean_snr_db(&road_pos(ap_x));
        let off_15m = ap3.mean_snr_db(&road_pos(ap_x + 15.0));
        let off_40m = ap3.mean_snr_db(&road_pos(ap_x + 40.0));
        assert!(at_patch > off_15m, "{at_patch} vs {off_15m}");
        assert!(off_15m > off_40m);
        assert!((24.0..34.0).contains(&at_patch), "patch SNR {at_patch}");
    }

    #[test]
    fn best_ap_changes_along_road() {
        // Walking the client down the road, the AP with the highest mean
        // SNR should progress 0,1,2,...,7 in order.
        let links = testbed_links(2);
        let mut best_seq = Vec::new();
        for step in 0..60 {
            let pos = road_pos(-2.0 + step as f64);
            let best = (0..links.len())
                .max_by(|&a, &b| {
                    links[a]
                        .mean_snr_db(&pos)
                        .partial_cmp(&links[b].mean_snr_db(&pos))
                        .unwrap()
                })
                .unwrap();
            best_seq.push(best);
        }
        // Must be non-decreasing and reach the last AP.
        assert!(best_seq.windows(2).all(|w| w[1] >= w[0]), "{best_seq:?}");
        assert_eq!(*best_seq.last().unwrap(), 7);
        assert_eq!(best_seq[0], 0);
    }

    #[test]
    fn cell_size_in_picocell_range() {
        // The contiguous stretch of road where an AP can deliver MCS7
        // frames with >90% success should be meters-scale (the paper's
        // "cell size" is 5.2 m).
        let links = testbed_links(3);
        let per = PerModel::default();
        let ap = &links[4];
        let ap_x = ap.ap_site().position.x;
        let mut cell_m = 0.0;
        for step in -300..300 {
            let x = ap_x + step as f64 * 0.1;
            let snr = ap.mean_snr_db(&road_pos(x));
            // Use mean SNR as ESNR proxy for a flat check.
            if per.success_prob(crate::mcs::Mcs(7), snr, 1500) > 0.9 {
                cell_m += 0.1;
            }
        }
        assert!(
            (2.0..12.0).contains(&cell_m),
            "top-rate cell size {cell_m} m out of picocell range"
        );
    }

    #[test]
    fn coverage_overlap_exists() {
        // At low MCS, adjacent AP coverage must overlap by several metres
        // (paper: 6–10 m).
        let links = testbed_links(4);
        let per = PerModel::default();
        let a = &links[2];
        let b = &links[3];
        let mut overlap_m = 0.0;
        for step in 0..1000 {
            let x = step as f64 * 0.1;
            let pos = road_pos(x);
            let ok = |l: &WirelessLink| {
                per.success_prob(crate::mcs::Mcs(0), l.mean_snr_db(&pos), 1500) > 0.5
            };
            if ok(a) && ok(b) {
                overlap_m += 0.1;
            }
        }
        assert!(
            (3.0..20.0).contains(&overlap_m),
            "coverage overlap {overlap_m} m"
        );
    }

    #[test]
    fn csi_is_time_varying_at_speed() {
        let links = testbed_links(5);
        let ap = &links[0];
        let pos = road_pos(0.0);
        let speed = 6.7; // 15 mph
        let e0 = controller_esnr_db(&ap.csi(SimTime::ZERO, &pos, speed));
        let mut max_delta: f64 = 0.0;
        for i in 1..50 {
            let t = SimTime::from_millis(i * 5);
            let e = controller_esnr_db(&ap.csi(t, &pos, speed));
            max_delta = max_delta.max((e - e0).abs());
        }
        assert!(max_delta > 3.0, "fading too shallow: {max_delta} dB swing");
    }

    #[test]
    fn stationary_csi_is_static() {
        let links = testbed_links(6);
        let ap = &links[0];
        let pos = road_pos(0.0);
        let a = controller_esnr_db(&ap.csi(SimTime::ZERO, &pos, 0.0));
        let b = controller_esnr_db(&ap.csi(SimTime::from_secs(5), &pos, 0.0));
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn shadowing_shifts_mean_snr() {
        let dep = DeploymentConfig::default().build();
        let mut cfg = LinkConfig::default();
        cfg.shadowing.sigma_db = 6.0;
        let mut r1 = SimRng::new(20).fork("a");
        let shadowed = WirelessLink::new(dep.aps[0], cfg, &mut r1);
        let mut r2 = SimRng::new(20).fork("a");
        let plain = WirelessLink::new(dep.aps[0], LinkConfig::default(), &mut r2);
        // Over many positions, shadowed and plain differ, with zero-mean
        // offsets.
        let mut diffs = Vec::new();
        for i in 0..200 {
            let pos = road_pos(i as f64 * 0.4);
            diffs.push(shadowed.mean_snr_db(&pos) - plain.mean_snr_db(&pos));
        }
        assert!(diffs.iter().any(|d| d.abs() > 1.0));
        let mean = wgtt_sim::stats::mean(&diffs);
        assert!(mean.abs() < 4.0, "offset mean {mean}");
    }

    #[test]
    fn geometry_cache_is_bit_exact() {
        let mut cfg = LinkConfig::default();
        cfg.shadowing.sigma_db = 4.0; // exercise the shadowing term too
        let dep = DeploymentConfig::default().build();
        let mut r = SimRng::new(31).fork("geo");
        let link = WirelessLink::new(dep.aps[2], cfg, &mut r);
        for step in 0..200 {
            let pos = road_pos(step as f64 * 0.37 - 10.0);
            let reference = link.mean_snr_db_uncached(&pos);
            // Cold, then warm: both must match the uncached value exactly.
            assert_eq!(link.mean_snr_db(&pos).to_bits(), reference.to_bits());
            assert_eq!(link.mean_snr_db(&pos).to_bits(), reference.to_bits());
            // Interleave a different position and re-query: the one-slot
            // cache must recompute, not serve the stale entry.
            let other = road_pos(step as f64 * 0.37 + 5.0);
            let other_ref = link.mean_snr_db_uncached(&other);
            assert_eq!(link.mean_snr_db(&other).to_bits(), other_ref.to_bits());
            assert_eq!(link.mean_snr_db(&pos).to_bits(), reference.to_bits());
        }
    }

    #[test]
    fn csi_cache_is_bit_exact() {
        // The memoized, twiddle-precomputed snapshot path must match the
        // uncached reference bit-for-bit: cold, warm (cache hit), and
        // after evictions by interleaved different queries.
        let mut cfg = LinkConfig::default();
        cfg.shadowing.sigma_db = 4.0;
        let dep = DeploymentConfig::default().build();
        let mut r = SimRng::new(43).fork("csi");
        let link = WirelessLink::new(dep.aps[3], cfg, &mut r);
        let check = |t: SimTime, pos: &Position, speed: f64| {
            let reference = link.csi_uncached(t, pos, speed);
            for csi in [link.csi(t, pos, speed), link.csi(t, pos, speed)] {
                assert_eq!(csi.mean_snr_db.to_bits(), reference.mean_snr_db.to_bits());
                for (a, b) in csi.h.iter().zip(&reference.h) {
                    assert_eq!(a.re.to_bits(), b.re.to_bits());
                    assert_eq!(a.im.to_bits(), b.im.to_bits());
                }
            }
        };
        for step in 0..100 {
            let t = SimTime::from_micros(step * 731);
            let pos = road_pos(step as f64 * 0.29 - 5.0);
            check(t, &pos, 6.7);
            // Different speed at the same instant evicts the slot; the
            // original query must then recompute identically.
            check(t, &pos, 11.2);
            check(t, &pos, 6.7);
        }
    }

    #[test]
    fn in_range_floor() {
        let links = testbed_links(7);
        let ap = &links[0];
        let ap_x = ap.ap_site().position.x;
        assert!(ap.in_range(&road_pos(ap_x), 5.0));
        assert!(!ap.in_range(&road_pos(ap_x + 300.0), 5.0));
    }

    #[test]
    fn capacity_best_ap_flips_at_ms_scale() {
        // The vehicular picocell regime (paper Fig 2): in an overlap zone
        // the instantaneous best AP (by ESNR) changes on millisecond
        // timescales due to fast fading.
        let links = testbed_links(8);
        let a = &links[2];
        let b = &links[3];
        // Stand in the overlap zone, but use vehicular Doppler.
        let pos = road_pos((a.ap_site().position.x + b.ap_site().position.x) / 2.0);
        let speed = 6.7;
        let mut flips = 0;
        let mut prev_best = 0;
        for i in 0..500 {
            let t = SimTime::from_millis(i * 2);
            let ea = controller_esnr_db(&a.csi(t, &pos, speed));
            let eb = controller_esnr_db(&b.csi(t, &pos, speed));
            let best = if ea >= eb { 0 } else { 1 };
            if i > 0 && best != prev_best {
                flips += 1;
            }
            prev_best = best;
        }
        assert!(flips > 10, "best AP flipped only {flips} times in 1 s");
    }

    #[test]
    fn mcs7_usable_fraction_near_boresight() {
        // At the cell center with fading, the link should support high MCS
        // most of the time (WGTT's Fig 16 shows ~70 Mbit/s p90 rates).
        let links = testbed_links(9);
        let per = PerModel::default();
        let ap = &links[1];
        let pos = road_pos(ap.ap_site().position.x);
        let mut ok = 0;
        let n = 400;
        for i in 0..n {
            let csi = ap.csi(SimTime::from_millis(i * 3), &pos, 6.7);
            if per.success_from_csi(crate::mcs::Mcs(7), &csi, 1500) > 0.5 {
                ok += 1;
            }
        }
        let frac = ok as f64 / n as f64;
        assert!(frac > 0.15, "MCS7 usable only {frac} of the time at center");
        // And the oracle best MCS at center is usually high.
        let csi = ap.csi(SimTime::from_millis(1), &pos, 6.7);
        assert!(per.best_mcs(GuardInterval::Short, &csi, 1500) >= crate::mcs::Mcs(3));
    }
}
