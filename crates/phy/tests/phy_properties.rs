//! Property-based tests on the PHY substrate's mathematical invariants.

use proptest::prelude::*;
use wgtt_phy::esnr::{ber, ber_inverse, esnr_db, Modulation};
use wgtt_phy::pathloss::{db_to_linear, linear_to_db, PathLoss};
use wgtt_phy::{FadingConfig, GuardInterval, Mcs, PerModel, TappedDelayLine};
use wgtt_sim::SimRng;

fn modulations() -> impl Strategy<Value = Modulation> {
    prop_oneof![
        Just(Modulation::Bpsk),
        Just(Modulation::Qpsk),
        Just(Modulation::Qam16),
        Just(Modulation::Qam64),
    ]
}

proptest! {
    /// ESNR is bounded by the best and worst subcarrier SNRs: averaging
    /// error rates can't do better than the best tone or worse than the
    /// worst.
    #[test]
    fn esnr_bounded_by_extremes(
        m in modulations(),
        snrs_db in proptest::collection::vec(-5.0f64..35.0, 1..56),
    ) {
        let lin: Vec<f64> = snrs_db.iter().map(|&d| db_to_linear(d)).collect();
        let e = esnr_db(m, &lin);
        let min = snrs_db.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = snrs_db.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(e <= max + 0.1, "esnr {e} above max tone {max}");
        prop_assert!(e >= min - 0.1, "esnr {e} below min tone {min}");
    }

    /// BER is monotone decreasing in SNR for every modulation.
    #[test]
    fn ber_monotone(m in modulations(), a in -10.0f64..40.0, delta in 0.1f64..20.0) {
        let lo = ber(m, db_to_linear(a));
        let hi = ber(m, db_to_linear(a + delta));
        prop_assert!(hi <= lo + 1e-15);
    }

    /// BER inversion round-trips within the numerically meaningful range.
    #[test]
    fn ber_inverse_roundtrip(m in modulations(), snr_db in 0.0f64..28.0) {
        let b = ber(m, db_to_linear(snr_db));
        prop_assume!(b > 1e-12);
        let back = linear_to_db(ber_inverse(m, b));
        prop_assert!((back - snr_db).abs() < 0.05, "{snr_db} -> {back}");
    }

    /// Frame success probability is monotone in ESNR and length-ordered:
    /// longer frames never succeed more often.
    #[test]
    fn per_model_monotonicity(
        mcs in 0u8..8,
        esnr in -5.0f64..35.0,
        delta in 0.1f64..10.0,
        len in 64usize..4000,
        extra in 1usize..4000,
    ) {
        let per = PerModel::default();
        let m = Mcs(mcs);
        prop_assert!(per.success_prob(m, esnr + delta, len) >= per.success_prob(m, esnr, len));
        prop_assert!(per.success_prob(m, esnr, len + extra) <= per.success_prob(m, esnr, len) + 1e-12);
        let p = per.success_prob(m, esnr, len);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    /// Capacity never exceeds the top PHY rate and is non-negative.
    #[test]
    fn capacity_bounded(snr_db in -10.0f64..40.0) {
        let per = PerModel::default();
        let csi = wgtt_phy::Csi {
            h: [wgtt_phy::Cplx::ONE; 56],
            mean_snr_db: snr_db,
        };
        let cap = per.capacity_bps(GuardInterval::Short, &csi, 1500);
        prop_assert!(cap >= 0.0);
        prop_assert!(cap <= Mcs(7).data_rate_bps(GuardInterval::Short) as f64 + 1.0);
    }

    /// Path loss is monotone in distance for any positive exponent.
    #[test]
    fn pathloss_monotone(n in 1.5f64..4.0, d in 1.0f64..200.0, extra in 0.1f64..100.0) {
        let pl = PathLoss { exponent: n, ..PathLoss::default() };
        prop_assert!(pl.loss_db(d + extra) > pl.loss_db(d));
    }

    /// A fading realization is a pure function of time: identical queries
    /// give identical responses, and different seeds differ.
    #[test]
    fn fading_is_deterministic(seed in 0u64..1000, t in 0.0f64..30.0) {
        let cfg = FadingConfig::default();
        let a = TappedDelayLine::new(&cfg, &mut SimRng::new(seed));
        let b = TappedDelayLine::new(&cfg, &mut SimRng::new(seed));
        prop_assert_eq!(a.power_gain(t, 50.0), b.power_gain(t, 50.0));
        let c = TappedDelayLine::new(&cfg, &mut SimRng::new(seed + 1));
        prop_assert_ne!(a.power_gain(t, 50.0), c.power_gain(t, 50.0));
    }

    /// dB/linear conversions round-trip.
    #[test]
    fn db_roundtrip(db in -100.0f64..100.0) {
        prop_assert!((linear_to_db(db_to_linear(db)) - db).abs() < 1e-9);
    }
}
