//! Quickstart: one client drives past the eight-AP array at 15 mph pulling
//! a greedy TCP download, under WGTT and under the Enhanced 802.11r
//! baseline, on identical channel realizations.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use wgtt::core::{run, FlowSpec, Mode, Scenario, SystemConfig};

fn main() {
    let seed = 42;
    for mode in [Mode::Wgtt, Mode::Enhanced80211r] {
        let cfg = SystemConfig {
            mode,
            ..SystemConfig::default()
        };
        let scenario =
            Scenario::single_drive(cfg, 15.0, vec![FlowSpec::DownlinkTcp { limit: None }], seed);
        let duration = scenario.duration;
        let result = run(scenario);
        let m = &result.world.clients[0].metrics;
        println!(
            "{:<18} TCP goodput {:>6.2} Mbit/s | {:>3} AP switches | switching accuracy {:>5.1}%",
            match mode {
                Mode::Wgtt => "WGTT",
                Mode::Enhanced80211r => "Enhanced 802.11r",
            },
            m.mean_downlink_bps(duration) / 1e6,
            m.switch_count(),
            m.switching_accuracy() * 100.0,
        );
    }
    println!("\n(Identical seeds mean identical fading; the gap is the roaming system.)");
}
