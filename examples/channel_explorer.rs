//! Explores the PHY substrate directly: walks a virtual client along the
//! road and prints each AP's mean SNR, instantaneous ESNR, and the oracle
//! best AP — the raw material behind the paper's Fig 2 and Fig 10.
//!
//! ```sh
//! cargo run --release --example channel_explorer
//! ```

use wgtt::phy::{
    controller_esnr_db, DeploymentConfig, GuardInterval, LinkConfig, PerModel, Position,
    WirelessLink,
};
use wgtt::sim::{SimRng, SimTime};

fn main() {
    let dep = DeploymentConfig::default().build();
    let root = SimRng::new(1);
    let links: Vec<WirelessLink> = dep
        .aps
        .iter()
        .enumerate()
        .map(|(a, site)| {
            let mut r = root.fork(&format!("link/{a}/0"));
            WirelessLink::new(*site, LinkConfig::default(), &mut r)
        })
        .collect();
    let per = PerModel::default();

    println!("Walking the near lane at 15 mph-equivalent Doppler; ESNR per AP (dB):\n");
    print!("   x   ");
    for a in 0..links.len() {
        print!("  AP{a} ");
    }
    println!("  best  capacity");
    let speed = 6.7;
    for step in 0..30 {
        let x = -4.0 + step as f64 * 2.0;
        let pos = Position::new(x, dep.lane_near_y, 1.5);
        let t = SimTime::from_millis(step * 300);
        let esnr: Vec<f64> = links
            .iter()
            .map(|l| controller_esnr_db(&l.csi(t, &pos, speed)))
            .collect();
        let (best, _) = esnr
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("not NaN"))
            .expect("non-empty");
        let cap = per.capacity_bps(GuardInterval::Short, &links[best].csi(t, &pos, speed), 1500);
        print!("{:>6.1} ", x);
        for e in &esnr {
            print!("{:>5.1} ", e.max(-9.9));
        }
        println!("  AP{best}   {:>5.1} Mbit/s", cap / 1e6);
    }
    println!("\nCells are metres wide and overlap at mid-SNR — the vehicular picocell regime.");
}
