//! A configurable drive-by with a live throughput/AP timeline — the
//! simulation equivalent of the paper's Figs 14/15.
//!
//! ```sh
//! cargo run --release --example drive_by -- [mph] [wgtt|baseline] [tcp|udp]
//! cargo run --release --example drive_by -- 25 baseline udp
//! ```

use wgtt::core::{run, FlowSpec, Mode, Scenario, SystemConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mph: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(15.0);
    let mode = match args.get(2).map(String::as_str) {
        Some("baseline") => Mode::Enhanced80211r,
        _ => Mode::Wgtt,
    };
    let tcp = !matches!(args.get(3).map(String::as_str), Some("udp"));

    let cfg = SystemConfig {
        mode,
        ..SystemConfig::default()
    };
    let flows = if tcp {
        vec![FlowSpec::DownlinkTcp { limit: None }]
    } else {
        vec![FlowSpec::DownlinkUdp {
            rate_bps: 30_000_000,
            payload: 1472,
        }]
    };
    let scenario = Scenario::single_drive(cfg, mph, flows, 7);
    let duration = scenario.duration;
    let result = run(scenario);
    let m = &result.world.clients[0].metrics;

    println!(
        "{} {} drive at {mph} mph — mean {:.2} Mbit/s, {} switches\n",
        match mode {
            Mode::Wgtt => "WGTT",
            Mode::Enhanced80211r => "Enhanced 802.11r",
        },
        if tcp { "TCP" } else { "UDP" },
        m.mean_downlink_bps(duration) / 1e6,
        m.switch_count(),
    );

    // ASCII timeline: 500 ms bins, one row each, with the serving AP.
    println!("  t      AP  throughput");
    let rates = m.downlink.rates();
    for chunk in rates.chunks(5) {
        let t = chunk[0].0;
        let mbps = chunk.iter().map(|(_, v)| v / 1e6).sum::<f64>() / chunk.len() as f64;
        let ap = m
            .serving_at(t + wgtt::sim::SimDuration::from_millis(250))
            .map(|a| a.0.to_string())
            .unwrap_or_else(|| "-".into());
        let bar = "#".repeat((mbps / 1.2).round() as usize);
        println!(
            "  {:>5.1}s {:>2}  {:>5.1} {}",
            t.as_secs_f64(),
            ap,
            mbps,
            bar
        );
    }
}
