//! Crash the serving AP mid-drive and watch the controller recover.
//!
//! ```sh
//! cargo run --release --example fault_injection -- [mph] [crash_ap] [crash_s]
//! cargo run --release --example fault_injection -- 15 4 3.0
//! ```
//!
//! Runs the same seeded drive twice — once healthy, once with the chosen
//! AP down for two seconds — and prints the failover latency plus the
//! health-layer counters that certify the controller never wedged.

use wgtt::core::{run, FlowSpec, Scenario, SystemConfig};
use wgtt::sim::{FaultSchedule, SimDuration, SimTime};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mph: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(15.0);
    let crash_ap: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let crash_s: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(3.0);

    let flows = vec![FlowSpec::DownlinkTcp { limit: None }];
    let base = Scenario::single_drive(SystemConfig::default(), mph, flows, 7);
    let duration = base.duration;

    let healthy = run(base.clone());

    let crash_at = SimTime::ZERO + SimDuration::from_secs_f64(crash_s);
    let mut faulty = base;
    faulty.faults = FaultSchedule::new().with_ap_outage(
        crash_ap,
        crash_at,
        crash_at + SimDuration::from_secs(2),
    );
    let res = run(faulty);

    let hm = &healthy.world.clients[0].metrics;
    let m = &res.world.clients[0].metrics;
    println!(
        "Drive at {mph} mph, AP {crash_ap} down {:.1}–{:.1} s",
        crash_s,
        crash_s + 2.0
    );
    println!(
        "  healthy: {:>6.2} Mbit/s, {} switches",
        hm.mean_downlink_bps(duration) / 1e6,
        hm.switch_count()
    );
    println!(
        "  faulty:  {:>6.2} Mbit/s, {} switches",
        m.mean_downlink_bps(duration) / 1e6,
        m.switch_count()
    );
    let sys = &res.world.sys;
    println!(
        "  crashes {}  reboots {}  abandoned {}  emergency re-attaches {}  re-wedged {}",
        sys.ap_crashes,
        sys.ap_reboots,
        sys.abandoned_switches,
        sys.emergency_reattaches,
        sys.re_wedged_switches
    );
    match m.failovers.as_slice() {
        [] => println!("  no failover needed (AP {crash_ap} was not serving the client)"),
        fs => {
            for (at, latency) in fs {
                println!(
                    "  failover at {:.2} s: blackout {:.0} ms",
                    at.as_secs_f64(),
                    latency.as_secs_f64() * 1e3
                );
            }
        }
    }
}
