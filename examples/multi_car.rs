//! Two cars share the array in the paper's three driving patterns
//! (Fig 19/20): following at 3 m, parallel in adjacent lanes, and opposing
//! directions. Prints per-client throughput under WGTT.
//!
//! ```sh
//! cargo run --release --example multi_car
//! ```

use wgtt::core::{run, ClientSpec, FlowSpec, Scenario, SystemConfig, TrajectorySpec};
use wgtt::sim::SimDuration;

fn pattern(name: &str) -> Vec<ClientSpec> {
    let flow = FlowSpec::DownlinkUdp {
        rate_bps: 15_000_000,
        payload: 1472,
    };
    match name {
        "following" => vec![
            ClientSpec {
                trajectory: TrajectorySpec::DriveBy {
                    mph: 15.0,
                    lead_in_m: 4.0,
                },
                flows: vec![flow.clone()],
            },
            ClientSpec {
                trajectory: TrajectorySpec::DriveByOffset {
                    mph: 15.0,
                    lead_in_m: 4.0,
                    offset_m: 3.0,
                    far_lane: false,
                },
                flows: vec![flow],
            },
        ],
        "parallel" => vec![
            ClientSpec {
                trajectory: TrajectorySpec::DriveBy {
                    mph: 15.0,
                    lead_in_m: 4.0,
                },
                flows: vec![flow.clone()],
            },
            ClientSpec {
                trajectory: TrajectorySpec::DriveByOffset {
                    mph: 15.0,
                    lead_in_m: 4.0,
                    offset_m: 0.0,
                    far_lane: true,
                },
                flows: vec![flow],
            },
        ],
        "opposing" => vec![
            ClientSpec {
                trajectory: TrajectorySpec::DriveBy {
                    mph: 15.0,
                    lead_in_m: 4.0,
                },
                flows: vec![flow.clone()],
            },
            ClientSpec {
                trajectory: TrajectorySpec::Opposing {
                    mph: 15.0,
                    lead_in_m: 4.0,
                },
                flows: vec![flow],
            },
        ],
        other => panic!("unknown pattern {other}"),
    }
}

fn main() {
    println!("Two cars, 15 Mbit/s UDP each, 15 mph, WGTT:\n");
    for name in ["following", "parallel", "opposing"] {
        let scenario = Scenario {
            config: SystemConfig::default(),
            clients: pattern(name),
            duration: SimDuration::from_secs_f64(63.5 / wgtt::phy::mph_to_mps(15.0)),
            seed: 11,
            log_deliveries: false,
            flow_start: SimDuration::from_millis(1),
            faults: wgtt_sim::FaultSchedule::default(),
        };
        let duration = scenario.duration;
        let result = run(scenario);
        let a = result.world.clients[0].metrics.mean_downlink_bps(duration) / 1e6;
        let b = result.world.clients[1].metrics.mean_downlink_bps(duration) / 1e6;
        println!(
            "  {:<10} car A {:>5.2} Mbit/s, car B {:>5.2} Mbit/s (mean {:.2})",
            name,
            a,
            b,
            (a + b) / 2.0
        );
    }
    println!("\nOpposing cars barely contend (spatial reuse); parallel cars always do.");
}
