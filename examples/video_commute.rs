//! Streams a 720p video to a commuting client (the paper's §5.4 online
//! video case study) and reports the rebuffer ratio under both roaming
//! systems at a few speeds.
//!
//! ```sh
//! cargo run --release --example video_commute
//! ```

use wgtt::core::{run, FlowSpec, Mode, Scenario, SystemConfig};
use wgtt::workloads::video::{replay_video, VideoConfig};

fn main() {
    let player = VideoConfig::default();
    println!(
        "720p stream ({:.1} Mbit/s media, {} ms pre-buffer)\n",
        player.bitrate_bps / 1e6,
        player.prebuffer.as_millis()
    );
    println!("speed   system             rebuffer  stalls  playback-start");
    for mph in [5.0, 15.0, 25.0] {
        for mode in [Mode::Wgtt, Mode::Enhanced80211r] {
            let cfg = SystemConfig {
                mode,
                ..SystemConfig::default()
            };
            let mut scenario =
                Scenario::single_drive(cfg, mph, vec![FlowSpec::DownlinkTcp { limit: None }], 9);
            scenario.log_deliveries = true;
            let window = scenario.duration;
            let result = run(scenario);
            let log = result.world.clients[0]
                .delivery_log
                .as_ref()
                .expect("delivery log enabled");
            let qoe = replay_video(log, &player, window);
            println!(
                "{:>3.0} mph {:<18} {:>7.2}  {:>6}  {}",
                mph,
                match mode {
                    Mode::Wgtt => "WGTT",
                    Mode::Enhanced80211r => "Enhanced 802.11r",
                },
                qoe.rebuffer_ratio(),
                qoe.rebuffer_events,
                qoe.playback_started
                    .map(|t| format!("{:.1}s", t.as_secs_f64()))
                    .unwrap_or_else(|| "never".into()),
            );
        }
    }
}
