//! Cross-crate integration tests through the `wgtt` facade: the headline
//! paper results, end to end.

use wgtt::core::{run, FlowSpec, Mode, Scenario, SystemConfig};
use wgtt::workloads::video::{replay_video, VideoConfig};

fn scenario(mode: Mode, mph: f64, flows: Vec<FlowSpec>, seed: u64) -> Scenario {
    let cfg = SystemConfig {
        mode,
        ..SystemConfig::default()
    };
    Scenario::single_drive(cfg, mph, flows, seed)
}

#[test]
fn headline_tcp_gain_in_paper_band() {
    // Paper: 2.4–4.7× TCP improvement across 5–25 mph. Check 15 mph lands
    // within a generous band around it.
    let tcp = |mode| {
        run(scenario(
            mode,
            15.0,
            vec![FlowSpec::DownlinkTcp { limit: None }],
            42,
        ))
        .downlink_bps(0)
    };
    let gain = tcp(Mode::Wgtt) / tcp(Mode::Enhanced80211r).max(1.0);
    assert!(
        (1.8..12.0).contains(&gain),
        "TCP gain {gain:.2} out of plausible band"
    );
}

#[test]
fn headline_udp_gain_in_paper_band() {
    let udp = |mode| {
        run(scenario(
            mode,
            15.0,
            vec![FlowSpec::DownlinkUdp {
                rate_bps: 30_000_000,
                payload: 1472,
            }],
            42,
        ))
        .downlink_bps(0)
    };
    let gain = udp(Mode::Wgtt) / udp(Mode::Enhanced80211r).max(1.0);
    assert!(
        (1.8..12.0).contains(&gain),
        "UDP gain {gain:.2} out of plausible band"
    );
}

#[test]
fn video_case_study_shape() {
    // Paper Table 4: WGTT streams with no rebuffering; the baseline
    // rebuffers for a large fraction of the transit.
    let player = VideoConfig::default();
    let measure = |mode| {
        let mut s = scenario(mode, 15.0, vec![FlowSpec::DownlinkTcp { limit: None }], 9);
        s.log_deliveries = true;
        let window = s.duration;
        let res = run(s);
        let log = res.world.clients[0].delivery_log.as_ref().unwrap().clone();
        replay_video(&log, &player, window).rebuffer_ratio()
    };
    let wgtt = measure(Mode::Wgtt);
    let base = measure(Mode::Enhanced80211r);
    assert!(wgtt < 0.1, "WGTT rebuffer ratio {wgtt}");
    assert!(base > wgtt + 0.15, "baseline {base} vs wgtt {wgtt}");
}

#[test]
fn switch_protocol_never_overlaps_per_client() {
    // Footnote 2 of the paper: one in-flight switch per client. The
    // engine's history must never contain overlapping switches for the
    // same client.
    let res = run(scenario(
        Mode::Wgtt,
        25.0,
        vec![FlowSpec::DownlinkUdp {
            rate_bps: 30_000_000,
            payload: 1472,
        }],
        3,
    ));
    let hist = res.world.ctrl.engine.history();
    assert!(!hist.is_empty());
    for w in hist.windows(2) {
        assert!(
            w[1].issued_at >= w[0].completed_at,
            "overlapping switches: {:?} then {:?}",
            w[0],
            w[1]
        );
    }
}

#[test]
fn uplink_dedup_protects_the_server() {
    let res = run(scenario(
        Mode::Wgtt,
        15.0,
        vec![FlowSpec::UplinkUdp {
            rate_bps: 3_000_000,
            payload: 1200,
        }],
        5,
    ));
    // Diversity delivered duplicate copies…
    assert!(res.world.sys.uplink_duplicates > 0);
    // …but the server-side sink saw none.
    let sink = res.world.flows[0].up_sink.as_ref().unwrap();
    assert_eq!(sink.duplicates(), 0);
    assert!(sink.received() > 100);
}

#[test]
fn runs_are_deterministic() {
    let mk = || {
        run(scenario(
            Mode::Wgtt,
            15.0,
            vec![FlowSpec::DownlinkTcp {
                limit: Some(500_000),
            }],
            77,
        ))
    };
    let (a, b) = (mk(), mk());
    assert_eq!(a.events, b.events);
    assert_eq!(a.downlink_bps(0), b.downlink_bps(0));
    assert_eq!(a.world.flows[0].completed_at, b.world.flows[0].completed_at);
}
