//! Property-based tests on the core data structures and protocol
//! invariants, spanning crates through the `wgtt` facade.

use proptest::prelude::*;
use wgtt::core::cyclic::{index_add, index_fwd_dist, CyclicQueue, IndexAllocator, INDEX_SPACE};
use wgtt::core::dedup::Deduplicator;
use wgtt::mac::blockack::{seq_add, seq_fwd_dist, BlockAckFrame, RxReorder, TxScoreboard};
use wgtt::net::{
    ClientId, Direction, FlowId, PacketFactory, Payload, TcpConfig, TcpReceiver, TcpSender,
};
use wgtt::sim::stats::TimeWindow;
use wgtt::sim::{EventQueue, SimDuration, SimTime};

fn packet_with_index(f: &mut PacketFactory, index: u16) -> wgtt::net::Packet {
    let mut p = f.make(
        ClientId(0),
        FlowId(0),
        Direction::Downlink,
        1500,
        SimTime::ZERO,
        Payload::Udp { seq: index as u64 },
    );
    p.index = Some(index % INDEX_SPACE);
    p
}

proptest! {
    /// 12-bit index arithmetic: fwd_dist inverts add.
    #[test]
    fn index_math_roundtrips(start in 0u16..4096, n in 0u16..4095) {
        let end = index_add(start, n);
        prop_assert_eq!(index_fwd_dist(start, end), n);
        prop_assert!(end < INDEX_SPACE);
    }

    /// 802.11 sequence math mirrors it.
    #[test]
    fn seq_math_roundtrips(start in 0u16..4096, n in 0u16..4095) {
        let end = seq_add(start, n);
        prop_assert_eq!(seq_fwd_dist(start, end), n);
    }

    /// The allocator never reuses an index within a buffer horizon.
    #[test]
    fn allocator_unique_within_horizon(count in 1usize..4096) {
        let mut a = IndexAllocator::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..count {
            prop_assert!(seen.insert(a.allocate()));
        }
    }

    /// Cyclic queue: whatever subset of a contiguous index stream is
    /// inserted (in any order), popping yields each inserted index exactly
    /// once, in index order from the first insert onward.
    #[test]
    fn cyclic_queue_delivers_each_once(
        start in 0u16..4096,
        mut picks in proptest::collection::vec(0u16..60, 1..40),
    ) {
        picks.sort_unstable();
        picks.dedup();
        let mut f = PacketFactory::new();
        let mut q = CyclicQueue::new();
        q.start_from(start);
        for &offset in &picks {
            q.insert(packet_with_index(&mut f, index_add(start, offset)));
        }
        let mut got = Vec::new();
        while let Some(p) = q.pop_head() {
            got.push(index_fwd_dist(start, p.index.unwrap()));
        }
        prop_assert_eq!(got, picks);
    }

    /// Under arbitrary interleavings of inserts (with stream jumps),
    /// pops, `start_from`, and `clear`, the O(1) backlog counter always
    /// equals a slow walk of the window, and the window never spans half
    /// the index space (where modular comparisons turn ambiguous). This is
    /// the invariant whose violation once livelocked the simulator.
    #[test]
    fn cyclic_queue_counter_invariant(
        ops in proptest::collection::vec((0u8..4, 0u16..4096), 1..250),
    ) {
        let mut f = PacketFactory::new();
        let mut q = CyclicQueue::new();
        let mut next_idx: u16 = 0;
        for (kind, arg) in ops {
            match kind {
                0 | 3 => {
                    // Insert the next stream index, occasionally jumping.
                    if kind == 3 {
                        next_idx = index_add(next_idx, arg % 3000);
                    }
                    q.insert(packet_with_index(&mut f, next_idx));
                    next_idx = index_add(next_idx, 1);
                }
                1 => {
                    let _ = q.pop_head();
                }
                _ => q.start_from(arg),
            }
            prop_assert_eq!(q.backlog(), q.backlog_walk(), "counter drifted");
            prop_assert!(
                q.backlog() == 0 || index_fwd_dist(q.head(), q.tail()) < INDEX_SPACE / 2,
                "window spans half the index space"
            );
        }
    }

    /// `start_from(k)` discards exactly the prefix before `k`.
    #[test]
    fn cyclic_start_from_discards_prefix(k in 0u16..50) {
        let mut f = PacketFactory::new();
        let mut q = CyclicQueue::new();
        for i in 0..50u16 {
            q.insert(packet_with_index(&mut f, i));
        }
        q.start_from(k);
        let first = q.pop_head().map(|p| p.index.unwrap());
        prop_assert_eq!(first, Some(k));
    }

    /// Tx scoreboard + Rx reorderer converge: under arbitrary per-MPDU
    /// loss patterns, retransmitting the unacked set eventually delivers
    /// every registered sequence exactly once.
    #[test]
    fn blockack_converges_under_loss(
        start in 0u16..4096,
        count in 1usize..64,
        loss in proptest::collection::vec(any::<bool>(), 64 * 6),
    ) {
        let mut tx = TxScoreboard::new(start);
        let mut rx = RxReorder::new(start);
        for _ in 0..count {
            tx.assign();
        }
        let mut li = 0;
        let mut rounds = 0;
        while tx.outstanding() > 0 && rounds < 200 {
            for s in tx.unacked() {
                let lost = loss.get(li).copied().unwrap_or(false);
                li += 1;
                if !lost {
                    rx.on_mpdu(s);
                }
            }
            tx.on_block_ack(&rx.block_ack());
            rx.release_in_order();
            rounds += 1;
        }
        // With the loss vector exhausted everything gets through.
        prop_assert_eq!(tx.outstanding(), 0);
        prop_assert_eq!(rx.accepted(), count as u64);
    }

    /// A Block ACK never acknowledges a sequence the receiver did not get.
    #[test]
    fn blockack_is_sound(received in proptest::collection::vec(0u16..64, 0..64)) {
        let mut rx = RxReorder::new(0);
        let mut truth = std::collections::HashSet::new();
        for s in received {
            rx.on_mpdu(s);
            truth.insert(s);
        }
        let ba: BlockAckFrame = rx.block_ack();
        for s in 0u16..64 {
            if ba.acks(s) {
                prop_assert!(truth.contains(&s), "BA acks un-received {s}");
            }
        }
    }

    /// Dedup: first copy of every distinct key passes; every repeat within
    /// capacity is suppressed — regardless of interleaving.
    #[test]
    fn dedup_exactly_once(keys in proptest::collection::vec(0u64..500, 1..2000)) {
        let mut d = Deduplicator::new(4096);
        let mut seen = std::collections::HashSet::new();
        for k in keys {
            let fresh = seen.insert(k);
            prop_assert_eq!(d.check_key(k), fresh);
        }
    }

    /// The event queue is a stable priority queue: pops are time-ordered,
    /// FIFO within a timestamp, and nothing is lost.
    #[test]
    fn event_queue_total_order(times in proptest::collection::vec(0u64..50, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_millis(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t, i));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated within timestamp");
            }
        }
    }

    /// The AP-selection time window never reports a stale median.
    #[test]
    fn time_window_median_is_fresh(
        samples in proptest::collection::vec((0u64..1000, -10.0f64..40.0), 1..200),
    ) {
        let mut sorted = samples.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut w = TimeWindow::new(SimDuration::from_millis(10));
        for (t, v) in &sorted {
            w.push(SimTime::from_millis(*t), *v);
        }
        let now = SimTime::from_millis(sorted.last().unwrap().0);
        w.evict(now);
        let fresh: Vec<f64> = sorted
            .iter()
            .filter(|(t, _)| now.saturating_since(SimTime::from_millis(*t)) <= SimDuration::from_millis(10))
            .map(|&(_, v)| v)
            .collect();
        prop_assert_eq!(w.len(), fresh.len());
        if let Some(m) = w.median() {
            let mut f = fresh.clone();
            f.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert_eq!(m, f[f.len() / 2]);
        }
    }

    /// TCP sender/receiver pair: under arbitrary segment loss and ack
    /// delivery, cumulative acks never exceed contiguous delivered bytes,
    /// and the sender's una never exceeds the receiver's rcv_nxt.
    #[test]
    fn tcp_invariants_under_loss(loss in proptest::collection::vec(any::<bool>(), 200)) {
        let mut snd = TcpSender::new(TcpConfig::default());
        let mut rcv = TcpReceiver::new();
        let mut now = SimTime::ZERO;
        let mut li = 0;
        for _round in 0..40 {
            let mut segs = Vec::new();
            while let Some(s) = snd.next_segment(now) {
                segs.push(s);
            }
            now += SimDuration::from_millis(10);
            let mut last_ack = None;
            for s in segs {
                let lost = loss.get(li % loss.len()).copied().unwrap_or(false);
                li += 1;
                if !lost {
                    last_ack = Some(rcv.on_data(s.seq, s.len));
                }
            }
            now += SimDuration::from_millis(10);
            if let Some(a) = last_ack {
                snd.on_ack(now, a);
            }
            snd.on_rto_check(now);
            prop_assert!(snd.snd_una() <= rcv.rcv_nxt());
        }
    }
}
