//! Offline stand-in for `serde`, scoped to what this workspace needs.
//!
//! The build environment has no network access to crates.io, so the real
//! `serde` cannot be resolved. Every use of serde in this repository is
//! "derive `Serialize`/`Deserialize`, then `serde_json::to_string_pretty`",
//! so this crate provides exactly that: a [`Serialize`] trait that renders
//! straight to compact JSON, a marker [`Deserialize`] trait, and derive
//! macros re-exported from the companion `serde_derive` stand-in.
//!
//! The surface intentionally mirrors the real crate's spelling (`use
//! serde::{Deserialize, Serialize}` plus `#[derive(...)]`) so swapping the
//! genuine dependency back in is a two-line Cargo.toml change.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// Types that can render themselves as compact JSON.
///
/// This is the stand-in for serde's `Serialize`; instead of a generic
/// `Serializer` visitor it writes JSON directly, which is the only format
/// the workspace emits.
pub trait Serialize {
    /// Appends this value's compact JSON encoding to `out`.
    fn serialize_json(&self, out: &mut String);

    /// Convenience: the compact JSON encoding as a fresh string.
    fn to_json_string(&self) -> String {
        let mut s = String::new();
        self.serialize_json(&mut s);
        s
    }
}

/// Marker trait mirroring serde's `Deserialize`. Nothing in the workspace
/// deserializes, so no methods are required; the derive emits nothing.
pub trait Deserialize {}

/// Escapes `s` per JSON string rules (quotes not included).
pub fn escape_json_str(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

impl_serialize_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                if self.is_finite() {
                    // `{}` prints "1" for 1.0 — still a valid JSON number.
                    out.push_str(&self.to_string());
                } else {
                    // JSON has no NaN/inf; null matches serde_json's default.
                    out.push_str("null");
                }
            }
        }
    )*};
}

impl_serialize_float!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        out.push('"');
        let mut buf = [0u8; 4];
        escape_json_str(self.encode_utf8(&mut buf), out);
        out.push('"');
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        out.push('"');
        escape_json_str(self, out);
        out.push('"');
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        self.as_str().serialize_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

fn serialize_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.serialize_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        serialize_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        serialize_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        serialize_seq(self.iter(), out);
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// String-keyed maps serialize as JSON objects. `HashMap` keys are sorted
/// first so output is deterministic — this repo's experiments rely on
/// byte-identical JSON across runs.
impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            k.as_str().serialize_json(out);
            out.push(':');
            v.serialize_json(out);
        }
        out.push('}');
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize_json(&self, out: &mut String) {
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        out.push('{');
        for (i, k) in keys.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            k.as_str().serialize_json(out);
            out.push(':');
            self[*k].serialize_json(out);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(42u32.to_json_string(), "42");
        assert_eq!((-7i64).to_json_string(), "-7");
        assert_eq!(1.5f64.to_json_string(), "1.5");
        assert_eq!(f64::NAN.to_json_string(), "null");
        assert_eq!(true.to_json_string(), "true");
        assert_eq!("a\"b".to_json_string(), "\"a\\\"b\"");
    }

    #[test]
    fn containers() {
        assert_eq!(vec![1u8, 2, 3].to_json_string(), "[1,2,3]");
        assert_eq!(Some(5u8).to_json_string(), "5");
        assert_eq!(Option::<u8>::None.to_json_string(), "null");
        assert_eq!((1u8, "x").to_json_string(), "[1,\"x\"]");
    }
}
