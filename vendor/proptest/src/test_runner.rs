//! Deterministic per-test RNG for the proptest stand-in.

/// Number of cases each property runs. `PROPTEST_CASES` overrides.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A small, fast, deterministic generator (xoshiro256** seeded via
/// splitmix64). Each test gets its own stream keyed on the test path, so
/// adding or reordering tests never perturbs another test's cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seeds from a 64-bit value.
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        TestRng {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
        }
    }

    /// Seeds from a test path (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(h)
    }

    /// Next raw 64-bit value (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection sampling to kill modulo bias.
        let zone = u64::MAX - u64::MAX.wrapping_rem(bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("mod::test");
        let mut b = TestRng::from_name("mod::test");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::from_name("mod::other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_in_range() {
        let mut r = TestRng::from_seed(1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
