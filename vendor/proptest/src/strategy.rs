//! Strategies for the proptest stand-in: how each supported input shape
//! turns a [`TestRng`] draw into a value.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A source of sampled values. The stand-in has no shrinking, so a
/// strategy is just a sampling function.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Uniform choice among boxed strategies — the engine behind
/// `prop_oneof!`.
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Builds from a non-empty set of options.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }

    /// Boxes one option; used by the `prop_oneof!` expansion so the
    /// element type unifies without casts at the call site.
    pub fn item<S: Strategy<Value = T> + 'static>(s: S) -> Box<dyn Strategy<Value = T>> {
        Box::new(s)
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// Element-count bound for [`vec`]: either exact or `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Samples a `Vec` of values from an element strategy.
pub struct VecStrategy<S: Strategy> {
    elem: S,
    size: SizeRange,
}

/// `proptest::collection::vec(strategy, len)` — `len` may be a `usize`
/// (exact) or a `usize` range.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let n = self.size.lo
            + if span <= 1 {
                0
            } else {
                rng.below(span) as usize
            };
        (0..n).map(|_| self.elem.sample(rng)).collect()
    }
}

/// Types with a canonical "any value" strategy. Only what the workspace
/// needs: `bool` and the small unsigned integers.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

/// Strategy for [`Arbitrary`] types; built by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

/// `any::<T>()` — the full value space of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..500 {
            let v = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..5.0).sample(&mut rng);
            assert!((-2.0..5.0).contains(&f));
            let i = (-5i32..=5).sample(&mut rng);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn vec_sizes() {
        let mut rng = TestRng::from_seed(4);
        for _ in 0..100 {
            let v = vec(0u8..10, 2..6).sample(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
        assert_eq!(vec(0u8..10, 7usize).sample(&mut rng).len(), 7);
    }

    #[test]
    fn oneof_covers_options() {
        let s = OneOf::new(std::vec![OneOf::item(Just(1u8)), OneOf::item(Just(2u8)),]);
        let mut rng = TestRng::from_seed(2);
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
