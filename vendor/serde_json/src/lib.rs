//! Offline stand-in for `serde_json`, scoped to what this workspace uses:
//! `to_string` and `to_string_pretty` over the stand-in `serde::Serialize`
//! trait (which renders compact JSON directly). Pretty-printing re-formats
//! the compact encoding with two-space indentation, matching the layout of
//! the real crate closely enough for the committed experiment artifacts to
//! stay human-diffable.

use serde::Serialize;
use std::fmt;

/// Serialization error. The stand-in `Serialize` is infallible, so this is
/// only here to keep call-site signatures (`Result<String, Error>`) intact.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error")
    }
}

impl std::error::Error for Error {}

/// Compact JSON encoding of `value`.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Pretty JSON encoding of `value`, two-space indented.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    Ok(prettify(&compact))
}

/// Re-formats compact JSON with newlines and two-space indentation.
/// String-literal aware; empty containers stay on one line.
fn prettify(compact: &str) -> String {
    let bytes = compact.as_bytes();
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut i = 0usize;

    let push_indent = |out: &mut String, indent: usize| {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    };

    while i < bytes.len() {
        let c = bytes[i] as char;
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            i += 1;
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                let close = if c == '{' { b'}' } else { b']' };
                if i + 1 < bytes.len() && bytes[i + 1] == close {
                    // Empty container: keep `{}` / `[]` inline.
                    out.push(c);
                    out.push(close as char);
                    i += 2;
                    continue;
                }
                out.push(c);
                indent += 1;
                push_indent(&mut out, indent);
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                push_indent(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(c);
                push_indent(&mut out, indent);
            }
            ':' => {
                out.push_str(": ");
            }
            _ => out.push(c),
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_shapes() {
        let v = vec![1u8, 2];
        assert_eq!(to_string(&v).unwrap(), "[1,2]");
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn pretty_handles_strings_with_structure_chars() {
        let v = vec!["a{b".to_string(), "c,d".to_string()];
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "[\n  \"a{b\",\n  \"c,d\"\n]");
    }

    #[test]
    fn empty_containers_inline() {
        let v: Vec<u8> = Vec::new();
        assert_eq!(to_string_pretty(&v).unwrap(), "[]");
    }
}
