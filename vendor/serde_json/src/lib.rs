//! Offline stand-in for `serde_json`, scoped to what this workspace uses:
//! `to_string` and `to_string_pretty` over the stand-in `serde::Serialize`
//! trait (which renders compact JSON directly), plus a small [`Value`]
//! parser ([`from_str`]) for tools that read JSON artifacts back (the
//! `perf_gate` regression check reads `BENCH.json` baselines).
//! Pretty-printing re-formats the compact encoding with two-space
//! indentation, matching the layout of the real crate closely enough for
//! the committed experiment artifacts to stay human-diffable.

use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;

/// Serialization error. The stand-in `Serialize` is infallible, so this is
/// only here to keep call-site signatures (`Result<String, Error>`) intact.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error")
    }
}

impl std::error::Error for Error {}

/// Compact JSON encoding of `value`.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Pretty JSON encoding of `value`, two-space indented.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    Ok(prettify(&compact))
}

/// Re-formats compact JSON with newlines and two-space indentation.
/// String-literal aware; empty containers stay on one line.
fn prettify(compact: &str) -> String {
    let bytes = compact.as_bytes();
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut i = 0usize;

    let push_indent = |out: &mut String, indent: usize| {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    };

    while i < bytes.len() {
        let c = bytes[i] as char;
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            i += 1;
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                let close = if c == '{' { b'}' } else { b']' };
                if i + 1 < bytes.len() && bytes[i + 1] == close {
                    // Empty container: keep `{}` / `[]` inline.
                    out.push(c);
                    out.push(close as char);
                    i += 2;
                    continue;
                }
                out.push(c);
                indent += 1;
                push_indent(&mut out, indent);
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                push_indent(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(c);
                push_indent(&mut out, indent);
            }
            ':' => {
                out.push_str(": ");
            }
            _ => out.push(c),
        }
        i += 1;
    }
    out
}

/// A parsed JSON document — the subset of the real crate's `Value` this
/// workspace reads back (objects keyed by string, arrays, numbers as f64,
/// strings, bools, null).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as f64 (adequate for metric artifacts).
    Number(f64),
    /// String literal.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; keys sorted for deterministic iteration.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member `key` of an object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The number as f64, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a JSON document. Errors carry the byte offset of the problem.
pub fn from_str(input: &str) -> Result<Value, ParseError> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

/// Parse failure: message plus byte offset.
#[derive(Debug)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let ch = s.chars().next().expect("non-empty checked above");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_shapes() {
        let v = vec![1u8, 2];
        assert_eq!(to_string(&v).unwrap(), "[1,2]");
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn pretty_handles_strings_with_structure_chars() {
        let v = vec!["a{b".to_string(), "c,d".to_string()];
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "[\n  \"a{b\",\n  \"c,d\"\n]");
    }

    #[test]
    fn empty_containers_inline() {
        let v: Vec<u8> = Vec::new();
        assert_eq!(to_string_pretty(&v).unwrap(), "[]");
    }

    #[test]
    fn parse_roundtrip_document() {
        let doc = r#"{"schema":1,"items":[{"id":"a","eps":1.5e6},{"id":"b","eps":-2}],
                      "ok":true,"none":null,"name":"x\n\"y\""}"#;
        let v = from_str(doc).unwrap();
        assert_eq!(v.get("schema").unwrap().as_f64(), Some(1.0));
        let items = v.get("items").unwrap().as_array().unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].get("id").unwrap().as_str(), Some("a"));
        assert_eq!(items[0].get("eps").unwrap().as_f64(), Some(1.5e6));
        assert_eq!(items[1].get("eps").unwrap().as_f64(), Some(-2.0));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("none"), Some(&Value::Null));
        assert_eq!(v.get("name").unwrap().as_str(), Some("x\n\"y\""));
    }

    #[test]
    fn parse_own_pretty_output() {
        let pretty = to_string_pretty(&vec![1u8, 2, 3]).unwrap();
        let v = from_str(&pretty).unwrap();
        assert_eq!(
            v,
            Value::Array(vec![
                Value::Number(1.0),
                Value::Number(2.0),
                Value::Number(3.0)
            ])
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("nope").is_err());
    }
}
