//! Offline stand-in for `serde_derive`.
//!
//! Parses the derive input token stream by hand (no `syn`/`quote`, which
//! are unavailable without network access) and emits an implementation of
//! the stand-in `serde::Serialize` trait, which renders compact JSON.
//!
//! Supported shapes — exactly the ones this workspace uses:
//! - structs with named fields  → JSON objects
//! - tuple structs with one field (newtypes) → the inner value
//! - tuple structs with several fields → JSON arrays
//! - enums whose variants are all unit variants → the variant name as a
//!   JSON string
//!
//! `#[derive(Deserialize)]` emits nothing: the workspace never
//! deserializes, and the stand-in `serde::Deserialize` trait is a marker.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(code) => code.parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// What the derive input turned out to be.
enum Shape {
    NamedStruct { fields: Vec<String> },
    TupleStruct { arity: usize },
    UnitEnum { variants: Vec<String> },
}

fn generate(input: TokenStream) -> Result<String, String> {
    let (name, shape) = parse_item(input)?;
    let mut body = String::new();
    match shape {
        Shape::NamedStruct { fields } => {
            body.push_str("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!("out.push_str(\"\\\"{f}\\\":\");\n"));
                body.push_str(&format!(
                    "::serde::Serialize::serialize_json(&self.{f}, out);\n"
                ));
            }
            body.push_str("out.push('}');\n");
        }
        Shape::TupleStruct { arity: 1 } => {
            body.push_str("::serde::Serialize::serialize_json(&self.0, out);\n");
        }
        Shape::TupleStruct { arity } => {
            body.push_str("out.push('[');\n");
            for i in 0..arity {
                if i > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!(
                    "::serde::Serialize::serialize_json(&self.{i}, out);\n"
                ));
            }
            body.push_str("out.push(']');\n");
        }
        Shape::UnitEnum { variants } => {
            body.push_str("let s = match self {\n");
            for v in &variants {
                body.push_str(&format!("{name}::{v} => \"\\\"{v}\\\"\",\n"));
            }
            body.push_str("};\nout.push_str(s);\n");
        }
    }
    Ok(format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize_json(&self, out: &mut String) {{\n{body}}}\n\
         }}\n"
    ))
}

/// Parses `[attrs] [vis] (struct|enum) Name <body>` and classifies it.
fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);

    let kw = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum keyword, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "derive(Serialize) stand-in: `{name}` is generic, which is unsupported"
            ));
        }
    }

    match kw.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok((
                name,
                Shape::NamedStruct {
                    fields: parse_named_fields(g.stream())?,
                },
            )),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                if arity == 0 {
                    return Err(format!("`{name}` has no fields to serialize"));
                }
                Ok((name, Shape::TupleStruct { arity }))
            }
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_unit_variants(&name, g.stream())?;
                Ok((name, Shape::UnitEnum { variants }))
            }
            other => Err(format!("unsupported enum body for `{name}`: {other:?}")),
        },
        other => Err(format!("unsupported item kind `{other}`")),
    }
}

/// Skips `#[...]` attributes (incl. doc comments) and a `pub`/`pub(...)`
/// visibility prefix.
fn skip_attrs_and_vis(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
}

/// Field names from a named-struct body: `attrs vis name: Type, ...`.
/// Commas inside `<...>` generic arguments do not split fields.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        let field = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after `{field}`, got {other:?}")),
        }
        fields.push(field);
        // Consume the type: everything up to a comma at angle-depth 0.
        let mut angle_depth = 0i32;
        for tt in iter.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    Ok(fields)
}

/// Number of fields in a tuple-struct body: comma-separated segments at
/// angle-depth 0 that actually contain tokens (so a trailing comma does
/// not count an extra field).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut fields = 0usize;
    let mut seg_has_tokens = false;
    for tt in stream {
        match tt {
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if seg_has_tokens {
                    fields += 1;
                }
                seg_has_tokens = false;
            }
            TokenTree::Punct(p) => {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    _ => {}
                }
                seg_has_tokens = true;
            }
            _ => seg_has_tokens = true,
        }
    }
    if seg_has_tokens {
        fields += 1;
    }
    fields
}

/// Variant names from an enum body; errors on data-carrying variants.
fn parse_unit_variants(enum_name: &str, stream: TokenStream) -> Result<Vec<String>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        let variant = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        match iter.next() {
            None => {
                variants.push(variant);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(variant),
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip the expression.
                for tt in iter.by_ref() {
                    if matches!(&tt, TokenTree::Punct(q) if q.as_char() == ',') {
                        break;
                    }
                }
                variants.push(variant);
            }
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "derive(Serialize) stand-in: variant `{enum_name}::{variant}` carries data, which is unsupported"
                ));
            }
            other => {
                return Err(format!(
                    "unexpected token after variant `{variant}`: {other:?}"
                ))
            }
        }
    }
    Ok(variants)
}
