//! Offline stand-in for `criterion`, covering the API this workspace's
//! benches call: `Criterion::bench_function`, `benchmark_group` (with
//! `sample_size`/`finish`), `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! It is a real (if simple) harness: each benchmark is warmed up, then
//! timed in batches until a small wall-clock budget is spent, and the
//! median per-iteration time is printed. No statistics beyond that — the
//! goal is usable numbers without crates.io access, not criterion parity.

use std::time::{Duration, Instant};

/// Per-iteration timing collector handed to the benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            samples: Vec::new(),
            budget,
        }
    }

    /// Times `f`, batching iterations adaptively until the budget is
    /// spent. Mirrors criterion's `iter` contract: `f` is the unit of
    /// work being measured.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration: grow until one batch takes
        // at least ~1 ms, so timer overhead is amortized away.
        let mut batch = 1u32;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline && self.samples.len() < 256 {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.samples.push(t0.elapsed() / batch);
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort();
        Some(self.samples[self.samples.len() / 2])
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Benchmark registry/driver. `Default` gives the standard configuration.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        match b.median() {
            Some(t) => println!("bench {name:<40} {}", format_duration(t)),
            None => println!("bench {name:<40} (no samples)"),
        }
        self
    }

    /// Opens a named group; benchmarks in it are prefixed `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// Grouped benchmarks, mirroring criterion's `BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in sizes batches by
    /// wall-clock budget instead of a sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{name}", self.name);
        self.parent.bench_function(&full, f);
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
